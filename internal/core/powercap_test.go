package core

import (
	"testing"

	"repro/internal/impls"
	"repro/internal/metrics"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// capSample is one controller tick observation.
type capSample struct {
	at   simtime.Time
	mw   float64
	step int
}

// flashCrowdConfig builds the acceptance workload: eight flash-crowd
// streams (seeded ×8 spike in the middle half of the run) over four
// consumer cores plus an on-board producer core, with the consolidation
// control plane live, on the virtual clock. The spike pins the producer
// core in the shallow C-state (sub-threshold arrival gaps) — the §III
// power regime the cap controller exists to govern. Everything is
// seeded, so runs are bit-exact.
func flashCrowdConfig() Config {
	dur := 6 * simtime.Second
	sc := trace.FlashCrowd(7, 8, dur, 400, 8)
	traces := make([]trace.Trace, len(sc.Streams))
	for i, st := range sc.Streams {
		traces[i] = st.Trace
	}
	b := impls.DefaultConfig(traces, 128)
	b.Cores = 5
	b.ConsumerCores = 4
	cfg := DefaultConfig(b)
	cfg.SlotSize = 5 * simtime.Millisecond
	cfg.MaxLatency = 100 * simtime.Millisecond
	cfg.Consolidate = true
	cfg.PlaceInterval = 25 * simtime.Millisecond
	cfg.PlaceBudgetRate = 8000
	return cfg
}

// runCapped executes the workload with the given cap (a huge cap is an
// uncapped probe) and returns the report plus the per-tick trace.
func runCapped(t *testing.T, cfg Config, capMW float64, pace bool) (metrics.Report, []capSample) {
	t.Helper()
	var samples []capSample
	cfg.PowerCapMilliwatts = capMW
	cfg.PowerCapInterval = 10 * simtime.Millisecond
	cfg.PowerCapPace = pace
	cfg.CapTrace = func(at simtime.Time, mw float64, step int) {
		samples = append(samples, capSample{at, mw, step})
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatalf("capped run (cap %.0fmW): %v", capMW, err)
	}
	return rep, samples
}

// peakWindowMW returns the largest windowed power observation.
func peakWindowMW(samples []capSample) float64 {
	var peak float64
	for _, s := range samples {
		if s.mw > peak {
			peak = s.mw
		}
	}
	return peak
}

// TestPowerCapFlashCrowd is the acceptance test: with the cap at ~60%
// of the uncapped peak windowed power on the flash-crowd trace,
// estimated power stays at or under the cap at every controller tick,
// every pair's latency bound still holds, and after the burst decays
// the controller relaxes fully back — no sticky throttle — so the run
// consumes everything the uncapped run does.
func TestPowerCapFlashCrowd(t *testing.T) {
	cfg := flashCrowdConfig()

	// Uncapped baseline for throughput parity.
	uncapped, err := Run(cfg)
	if err != nil {
		t.Fatalf("uncapped run: %v", err)
	}
	// Probe: a cap far above anything the workload draws measures the
	// uncapped peak windowed power without perturbing the run.
	_, probe := runCapped(t, cfg, 1e9, false)
	peak := peakWindowMW(probe)
	if peak <= cfg.Base.Model.BackgroundMilliwatts {
		t.Fatalf("probe peak %.1fmW not above the background floor", peak)
	}

	budget := 0.6 * peak
	capped, samples := runCapped(t, cfg, budget, false)
	t.Logf("uncapped peak %.1fmW, cap %.1fmW, throttle events %d, min freq %.1f",
		peak, budget, capped.ThrottleEvents, capped.MinFrequency)

	if len(samples) == 0 {
		t.Fatal("controller never ticked")
	}
	for _, s := range samples {
		if s.mw > budget {
			t.Fatalf("tick %v: windowed power %.1fmW exceeds cap %.1fmW (step %d)",
				s.at, s.mw, budget, s.step)
		}
	}
	if capped.ThrottleEvents == 0 {
		t.Fatal("a cap at 60% of peak must throttle during the flash crowd")
	}
	// Latency bound: PBPL's planner never reserves past MaxLatency, so
	// throttling batches harder must not break the bound (the run-level
	// invariant allows the usual drain slack of two slots).
	if capped.LatencyP99 > cfg.MaxLatency {
		t.Fatalf("p99 latency %v exceeds bound %v while throttled", capped.LatencyP99, cfg.MaxLatency)
	}
	if bound := cfg.MaxLatency + 2*cfg.SlotSize; capped.MaxLatency > bound {
		t.Fatalf("max latency %v exceeds bound %v while throttled", capped.MaxLatency, bound)
	}
	// No sticky throttle: after the burst decays the controller must
	// have stepped all the way back down...
	if last := samples[len(samples)-1]; last.step != 0 {
		t.Fatalf("throttle stuck at step %d after the burst", last.step)
	}
	// ...and throughput matches the uncapped baseline (conservation
	// holds in both runs; nothing was shed to meet the cap).
	if capped.Produced != capped.Consumed {
		t.Fatalf("conservation: produced %d consumed %d", capped.Produced, capped.Consumed)
	}
	if capped.Consumed != uncapped.Consumed {
		t.Fatalf("capped run consumed %d, uncapped %d", capped.Consumed, uncapped.Consumed)
	}
}

// TestPowerCapConvergence drives a constant-rate workload against a
// tight cap and requires the controller to converge: after a settle
// window it must sit on one ladder rung (the hysteresis dead band —
// no oscillation) with every observation at or under the cap.
func TestPowerCapConvergence(t *testing.T) {
	dur := 6 * simtime.Second
	base := trace.Generate(trace.Constant(3000), dur, 42)
	b := impls.DefaultConfig(base.PhaseShifts(8), 128)
	b.Cores = 5
	b.ConsumerCores = 4
	cfg := DefaultConfig(b)
	cfg.SlotSize = 5 * simtime.Millisecond
	cfg.MaxLatency = 100 * simtime.Millisecond
	cfg.Consolidate = true
	cfg.PlaceInterval = 25 * simtime.Millisecond
	cfg.PlaceBudgetRate = 8000

	_, probe := runCapped(t, cfg, 1e9, false)
	peak := peakWindowMW(probe)
	budget := 0.6 * peak
	capped, samples := runCapped(t, cfg, budget, false)
	t.Logf("steady uncapped peak %.1fmW, cap %.1fmW, events %d", peak, budget, capped.ThrottleEvents)

	if capped.ThrottleEvents == 0 {
		t.Fatal("a 60% cap on a steady workload must throttle")
	}
	settle := simtime.Time(2 * simtime.Second)
	steps := make(map[int]int)
	for _, s := range samples {
		if s.at < settle {
			continue
		}
		steps[s.step]++
		if s.mw > budget {
			t.Fatalf("tick %v after settle: %.1fmW exceeds cap %.1fmW", s.at, s.mw, budget)
		}
	}
	if len(steps) != 1 {
		t.Fatalf("controller oscillates after settle: steps observed %v", steps)
	}
	if capped.LatencyP99 > cfg.MaxLatency {
		t.Fatalf("p99 latency %v exceeds bound %v under steady throttle", capped.LatencyP99, cfg.MaxLatency)
	}
}

// TestPowerCapSlackNeverThrottles: with the cap comfortably above the
// workload's draw the controller must never arm, and the run must be
// behaviorally identical to an uncapped one (same wakeups, same items).
func TestPowerCapSlackNeverThrottles(t *testing.T) {
	cfg := flashCrowdConfig()
	uncapped, err := Run(cfg)
	if err != nil {
		t.Fatalf("uncapped run: %v", err)
	}
	_, probe := runCapped(t, cfg, 1e9, false)
	peak := peakWindowMW(probe)

	capped, samples := runCapped(t, cfg, 2*peak, false)
	if capped.ThrottleEvents != 0 {
		t.Fatalf("cap with 2x slack produced %d throttle events", capped.ThrottleEvents)
	}
	for _, s := range samples {
		if s.step != 0 {
			t.Fatalf("tick %v: throttled to step %d with slack", s.at, s.step)
		}
	}
	if capped.Wakeups != uncapped.Wakeups || capped.Consumed != uncapped.Consumed {
		t.Fatalf("slack cap perturbed the run: wakeups %d vs %d, consumed %d vs %d",
			capped.Wakeups, uncapped.Wakeups, capped.Consumed, uncapped.Consumed)
	}
	if capped.MinFrequency != 1 {
		t.Fatalf("DVFS engaged (min freq %v) with slack", capped.MinFrequency)
	}
}

// TestPowerCapPacePolicy checks the policy switch: under the same tight
// cap the pace ladder reaches for frequency first (min frequency < 1),
// while race-to-idle holds f=1 until batching is exhausted.
func TestPowerCapPacePolicy(t *testing.T) {
	cfg := flashCrowdConfig()
	_, probe := runCapped(t, cfg, 1e9, false)
	peak := peakWindowMW(probe)
	budget := 0.6 * peak

	pace, _ := runCapped(t, cfg, budget, true)
	race, _ := runCapped(t, cfg, budget, false)
	if pace.ThrottleEvents == 0 || race.ThrottleEvents == 0 {
		t.Fatalf("both policies must throttle (pace %d, race %d)", pace.ThrottleEvents, race.ThrottleEvents)
	}
	if pace.MinFrequency >= 1 {
		t.Fatalf("pace policy never lowered frequency (min %v)", pace.MinFrequency)
	}
	if pace.LatencyP99 > cfg.MaxLatency || race.LatencyP99 > cfg.MaxLatency {
		t.Fatalf("latency bound broken: pace p99 %v, race p99 %v (bound %v)",
			pace.LatencyP99, race.LatencyP99, cfg.MaxLatency)
	}
}

// TestCapControlHysteresis pins the throttle state machine's dead band:
// samples between the relax and arm thresholds never move the step,
// relaxing takes CapCalmTicks consecutive calm samples, and a sample
// far over the arm threshold escalates several rungs at once.
func TestCapControlHysteresis(t *testing.T) {
	cc := NewCapControl(1000, false)

	// Dead-band samples never move the step.
	for i := 0; i < 10; i++ {
		if cc.Observe(700) || cc.Observe(840) {
			t.Fatal("dead-band sample changed the step")
		}
	}
	if cc.StepIndex() != 0 || cc.ThrottleEvents() != 0 {
		t.Fatalf("dead band moved state: step %d events %d", cc.StepIndex(), cc.ThrottleEvents())
	}

	// A mild overshoot escalates one rung; a huge one jumps several.
	if !cc.Observe(900) || cc.StepIndex() != 1 {
		t.Fatalf("mild overshoot: step %d", cc.StepIndex())
	}
	if !cc.Observe(2000) || cc.StepIndex() <= 2 {
		t.Fatalf("large overshoot only reached step %d", cc.StepIndex())
	}
	events := cc.ThrottleEvents()
	if events != 2 {
		t.Fatalf("throttle events %d, want 2", events)
	}

	// Relaxing requires CapCalmTicks consecutive calm samples; a single
	// dead-band sample in between resets the count.
	from := cc.StepIndex()
	cc.Observe(100)
	cc.Observe(100)
	cc.Observe(700) // dead band: resets calm
	cc.Observe(100)
	cc.Observe(100)
	if cc.StepIndex() != from {
		t.Fatalf("relaxed after interrupted calm run: step %d", cc.StepIndex())
	}
	cc.Observe(100)
	if cc.StepIndex() != from-1 {
		t.Fatalf("did not relax after %d calm ticks: step %d", CapCalmTicks, cc.StepIndex())
	}

	// Saturation: at the top rung further overshoot is not an event.
	for cc.StepIndex() < len(cc.Ladder)-1 {
		cc.Observe(5000)
	}
	events = cc.ThrottleEvents()
	if cc.Observe(5000) {
		t.Fatal("step changed at ladder top")
	}
	if cc.ThrottleEvents() != events {
		t.Fatal("saturated overshoot counted as a throttle event")
	}
}
