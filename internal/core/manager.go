package core

import (
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/track"
)

// coreManager owns one core's slot track: it "accepts reservation
// requests for specific slots made by the consumers, maintains a list
// of consumers to invoke at every slot, and supports deregistering"
// (§V-B). It wakes the core only at the earliest slot holding at least
// one reservation, "ensuring that the CPU is not activated needlessly".
type coreManager struct {
	core  *sim.Core
	loop  *simtime.Loop
	track track.Track

	// reservations maps slot index → consumers registered for it. Only
	// near-future slots ever exist: "past reservations are replaced and
	// future reservations are limited to only the next invocation of
	// every consumer" (§V-B), so the map holds at most one entry per
	// consumer hosted on the core.
	reservations map[int64][]*consumer

	wakeEvent *simtime.Event
	wakeSlot  int64

	// scheduledWakes counts manager slot activations — the paper's
	// internal "upper bound wakeups" metric.
	scheduledWakes uint64
}

func newCoreManager(core *sim.Core, loop *simtime.Loop, tr track.Track) *coreManager {
	return &coreManager{
		core:         core,
		loop:         loop,
		track:        tr,
		reservations: make(map[int64][]*consumer),
	}
}

// Has reports whether slot already has a registered consumer — the
// w(s)=0 condition in the reservation cost function. Together with
// PrevReserved it satisfies the planner's Reservations view.
func (cm *coreManager) Has(slot int64) bool {
	return len(cm.reservations[slot]) > 0
}

// PrevReserved returns the latest reserved slot strictly inside
// (after, before), mirroring the paper's "helper function in the core
// manager that backtracks to the next slot with reservations". The
// reservation set holds at most one entry per hosted consumer, so the
// scan is O(consumers-per-core).
func (cm *coreManager) PrevReserved(before, after int64) (int64, bool) {
	best := int64(0)
	found := false
	for slot, cs := range cm.reservations {
		if len(cs) == 0 {
			continue
		}
		if slot > after && slot < before && (!found || slot > best) {
			best = slot
			found = true
		}
	}
	return best, found
}

// reserve registers c for slot, replacing any previous reservation, and
// pulls the manager's wakeup earlier if needed.
func (cm *coreManager) reserve(c *consumer, slot int64) {
	if c.reservedSlot == slot {
		return
	}
	cm.deregister(c)
	cm.reservations[slot] = append(cm.reservations[slot], c)
	c.reservedSlot = slot
	cm.ensureWake()
}

// deregister removes c's pending reservation, if any — "a consumer may
// decide a slot is no longer appropriate".
func (cm *coreManager) deregister(c *consumer) {
	if c.reservedSlot < 0 {
		return
	}
	slot := c.reservedSlot
	list := cm.reservations[slot]
	for i, other := range list {
		if other == c {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(cm.reservations, slot)
	} else {
		cm.reservations[slot] = list
	}
	c.reservedSlot = -1
	// If the manager was about to wake for a now-empty slot, move the
	// wakeup to the next populated one (or cancel it).
	if cm.wakeEvent != nil && slot == cm.wakeSlot && !cm.Has(slot) {
		cm.loop.Cancel(cm.wakeEvent)
		cm.wakeEvent = nil
		cm.ensureWake()
	}
}

// earliestReservedSlot returns the minimum populated slot index.
func (cm *coreManager) earliestReservedSlot() (int64, bool) {
	best := int64(0)
	found := false
	for slot, cs := range cm.reservations {
		if len(cs) == 0 {
			continue
		}
		if !found || slot < best {
			best = slot
			found = true
		}
	}
	return best, found
}

// ensureWake keeps the manager's single wake event pointed at the
// earliest reserved slot.
func (cm *coreManager) ensureWake() {
	slot, ok := cm.earliestReservedSlot()
	if !ok {
		if cm.wakeEvent != nil {
			cm.loop.Cancel(cm.wakeEvent)
			cm.wakeEvent = nil
		}
		return
	}
	at := cm.track.Start(slot)
	if cm.wakeEvent != nil {
		if cm.wakeSlot == slot {
			return
		}
		cm.loop.Cancel(cm.wakeEvent)
	}
	cm.wakeSlot = slot
	cm.wakeEvent = cm.loop.Schedule(at, cm.onWake)
}

// onWake is the §V-B Fig. 7 sequence: activate every consumer
// registered for the current slot (they drain, update predictions,
// resize, and reserve their next slot), then schedule the next wakeup
// at the earliest slot with a reservation.
func (cm *coreManager) onWake() {
	cm.wakeEvent = nil
	slot := cm.wakeSlot
	consumers := cm.reservations[slot]
	delete(cm.reservations, slot)
	cm.scheduledWakes++
	for _, c := range consumers {
		c.reservedSlot = -1
		c.invoke(true)
	}
	cm.ensureWake()
}
