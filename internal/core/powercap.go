// Power-cap control plane: a feedback controller that keeps estimated
// power under an explicit budget by escalating through a throttle
// ladder — batching harder (raising the planner's wakeup cost ω so
// consumers latch into fewer, larger batches) and lowering the cores'
// DVFS operating point — while every consumer's MaxLatency bound keeps
// holding, because the planner never places a reservation beyond it
// (throttling defers batches only inside the bound).
//
// The ladder order encodes the race-to-idle vs. pace policy trade
// (Conoci et al., Hofmann et al.): race-to-idle consolidates wakeups
// first and touches frequency last, so cores still sprint at f=1 and
// then sleep deeply; pace reaches for frequency first, smearing the
// same work thinner over time. Both ladders end at the same maximal
// throttle so the reachable power floor is policy-independent.
package core

import "fmt"

// CapStep is one throttle ladder rung, three knob families:
//
//   - BudgetScale inflates every placement-manager budget, so the
//     consolidation planner packs pairs onto fewer cores (spatial
//     consolidation: emptied cores stop waking entirely). No-op when
//     consolidation is off.
//   - OmegaScale multiplies the planner's per-wakeup energy cost ω, so
//     consumers latch into fewer, larger batches inside their latency
//     bounds (temporal consolidation).
//   - Freq is the relative DVFS operating point in (0, 1]. Rungs down
//     to 0.6 stay near the leakage-model busy-energy optimum
//     √(leakage/(1−leakage)) ≈ 0.65; the terminal 0.4 rung is the
//     emergency stop — below the optimum it costs net energy per item,
//     but draw (power, not energy) keeps falling, and a hard cap
//     governs draw.
type CapStep struct {
	BudgetScale float64
	OmegaScale  float64
	Freq        float64
}

// CapLadder returns the throttle ladder for a policy, mildest first.
// Rung 0 is always the identity (no throttle). Race-to-idle (the
// default) consolidates first — spatially, then temporally — and
// touches frequency last, so cores sprint at f=1 and then sleep deeply;
// pace reaches for frequency first, smearing the same work thinner.
// Both ladders end at the same maximal throttle, so the reachable power
// floor is policy-independent.
func CapLadder(pace bool) []CapStep {
	if pace {
		return []CapStep{
			{1, 1, 1}, {1, 1, 0.8}, {1, 1, 0.6}, {1, 1, 0.4},
			{2, 1, 0.4}, {4, 1, 0.4}, {4, 2, 0.4}, {4, 4, 0.4}, {4, 8, 0.4},
		}
	}
	return []CapStep{
		{1, 1, 1}, {2, 1, 1}, {4, 1, 1}, {4, 2, 1}, {4, 4, 1},
		{4, 8, 1}, {4, 8, 0.8}, {4, 8, 0.6}, {4, 8, 0.4},
	}
}

// Hysteresis thresholds, as fractions of the cap. The controller arms
// (escalates) above CapArmFraction — a guard band below the cap itself,
// so a load ramp is met before estimated power crosses the budget — and
// relaxes one rung only after CapCalmTicks consecutive observations
// below CapRelaxFraction. The dead band between the two is where a
// converged controller sits still: the oscillation guard.
const (
	CapArmFraction   = 0.85
	CapRelaxFraction = 0.60
	CapCalmTicks     = 3
)

// CapSmoothing is the EWMA factor folding raw power windows into the
// controller's estimate (time constant ≈ 1/CapSmoothing ticks). One
// tick window is shorter than a batch cadence, so raw windows alternate
// between drain spikes and silence; the cap governs power sustained
// across batch cycles — the RAPL-style window — which is what the
// smoothed estimate tracks.
const CapSmoothing = 0.25

// CapControl is the policy-independent throttle state machine, shared
// by the simulator's controller and the live runtime's. It runs
// fast-attack/slow-release: escalation keys off the raw window power (a
// leading indicator — a ramp is met before the sustained estimate ever
// nears the cap), while relaxation and the reported estimate use the
// EWMA-smoothed power, so one quiet window never unwinds a throttle.
// It is not concurrency-safe; callers serialize Observe.
type CapControl struct {
	Cap    float64 // power budget, mW (must be > 0)
	Ladder []CapStep

	smoothed float64
	step     int
	calm     int // consecutive observations below the relax threshold

	throttles uint64
}

// NewCapControl builds a controller for the given budget and policy.
func NewCapControl(capMW float64, pace bool) *CapControl {
	if capMW <= 0 {
		panic(fmt.Sprintf("core: non-positive power cap %v", capMW))
	}
	return &CapControl{Cap: capMW, Ladder: CapLadder(pace)}
}

// Step returns the currently commanded ladder rung.
func (cc *CapControl) Step() CapStep { return cc.Ladder[cc.step] }

// StepIndex returns the current rung index (0 = unthrottled).
func (cc *CapControl) StepIndex() int { return cc.step }

// Throttled reports whether any throttle is currently applied.
func (cc *CapControl) Throttled() bool { return cc.step > 0 }

// ThrottleEvents counts escalations so far.
func (cc *CapControl) ThrottleEvents() uint64 { return cc.throttles }

// Smoothed returns the EWMA power estimate after the last Observe —
// the controller's notion of sustained power, the quantity the cap
// governs.
func (cc *CapControl) Smoothed() float64 { return cc.smoothed }

// Observe feeds one raw window-power sample (mW) and returns whether
// the commanded step changed. Escalation keys off the raw window and is
// proportional — a window far above the arm threshold jumps several
// rungs at once, so a fast ramp is met before the smoothed estimate
// nears the cap — while relaxation keys off the smoothed estimate and
// is always a single rung gated on CapCalmTicks of calm, so recovery
// cannot oscillate.
func (cc *CapControl) Observe(win float64) bool {
	cc.smoothed += CapSmoothing * (win - cc.smoothed)
	arm := CapArmFraction * cc.Cap
	relax := CapRelaxFraction * cc.Cap
	switch {
	case win > arm:
		cc.calm = 0
		if cc.step >= len(cc.Ladder)-1 {
			return false
		}
		k := 1 + int((win-arm)/(0.10*cc.Cap))
		cc.step += k
		if cc.step > len(cc.Ladder)-1 {
			cc.step = len(cc.Ladder) - 1
		}
		cc.throttles++
		return true
	case cc.smoothed < relax && win < relax:
		if cc.step == 0 {
			return false
		}
		cc.calm++
		if cc.calm >= CapCalmTicks {
			cc.calm = 0
			cc.step--
			return true
		}
		return false
	default:
		cc.calm = 0
		return false
	}
}
