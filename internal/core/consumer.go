package core

import (
	"repro/internal/buffer"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/predict"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/simtime"
)

// consumer is the autonomous PBPL consumer of §V-C in the simulator:
// "on a principal level all consumers behave identically and are
// designed to be autonomous. The scheduling aspect of the consumer
// invocation should not be dictated by the system." All reservation
// decisions are delegated to the shared Planner; this type only wires
// the planner to the event loop, the machine and the buffer pool.
type consumer struct {
	id      int
	cm      *coreManager
	cmIndex int // index of cm in the managers slice (placement identity)
	core    *sim.Core
	loop    *simtime.Loop
	pool    *buffer.Pool
	pred    predict.Predictor
	m       *metrics.Collector
	planner *Planner

	buf       ring.Queue[simtime.Time]
	quota     int // current buffer capacity Bi
	traceSink *metrics.InvocationTrace

	reservedSlot int64 // -1 when none pending
	lastInvoke   simtime.Time

	perItemWork    simtime.Duration
	invokeOverhead simtime.Duration

	// Fault injection (nil inj: healthy consumer, zero-cost path).
	inj             *faults.Injector
	quarantineAfter int // breaker K; 0 disables
	consecFails     int
	quarantined     bool
}

// onArrival is the producer side: buffer the item; a full buffer forces
// an unscheduled invocation (overflow); an un-reserved consumer arms
// itself.
func (c *consumer) onArrival(at simtime.Time) {
	c.m.Produced++
	if c.quarantined {
		// Breaker open: the item is refused on admission (the live
		// runtime's ErrQuarantined fast-fail) — no buffering, no
		// reservation, so the hosting core never wakes for this pair.
		c.m.Dropped++
		return
	}
	c.buf.Push(at)
	if c.buf.Len() >= c.quota {
		c.m.Overflows++
		c.invoke(false)
		return
	}
	if c.reservedSlot < 0 {
		c.reserveNext()
	}
}

// invoke drains the buffer, updates the rate prediction, resizes, and
// reserves the next slot — the consumer column of Fig. 7.
func (c *consumer) invoke(scheduled bool) {
	if !scheduled {
		// Overflow path: the pending reservation is stale.
		c.cm.deregister(c)
	}
	c.drainNow(scheduled)
	c.reserveNext()
}

// drainNow is the drain half of an invocation: consume the batch, run
// the service cost on the hosting core, and observe the rate
// r_j = |γ(τ_{j-1}, τ_j)| / (τ_j − τ_{j-1}).
//
// With fault injection, the injector decides the invocation's fate
// before delivery: a failed invocation (panic, error, or stall) still
// pays its service cost — the handler ran — and a stall burns
// Profile.Stall of extra active time, but its batch is dropped rather
// than consumed. quarantineAfter consecutive failures open the
// breaker: the consumer deregisters and refuses all further arrivals.
func (c *consumer) drainNow(scheduled bool) {
	now := c.loop.Now()
	batch := c.buf.Drain()
	c.traceSink.Log(c.id, now, scheduled, len(batch))
	c.m.Invocations++
	var d faults.Decision
	if c.inj != nil && len(batch) > 0 {
		d = c.inj.Next()
	}
	c.core.RunFor(c.invokeOverhead + simtime.Duration(len(batch))*c.perItemWork)
	if d.Stall > 0 {
		c.core.RunFor(simtime.Duration(d.Stall))
	}
	if d.Clean() {
		c.m.Consume(now, batch)
		if len(batch) > 0 {
			c.consecFails = 0
		}
	} else {
		c.m.Dropped += uint64(len(batch))
		c.consecFails++
		if c.quarantineAfter > 0 && c.consecFails >= c.quarantineAfter {
			c.quarantined = true
			c.m.Quarantines++
			c.cm.deregister(c)
			// Release the buffer quota down to the pool floor: a
			// quarantined consumer buffers nothing, so its share of Bg
			// goes back behind the elastic walls for healthy pairs.
			c.quota = c.requestQuota(0)
		}
	}
	if dt := now.Sub(c.lastInvoke); dt > 0 {
		c.pred.Observe(float64(len(batch)) / dt.Seconds())
	}
	c.lastInvoke = now
}

// migrate moves the consumer to another core manager, mirroring the
// live runtime's protocol: drop the reservation, quiesce-drain any
// buffered items on the source core (so no item's batch crosses the
// move and its service cost lands where the items actually waited),
// then re-plan on the target.
func (c *consumer) migrate(to *coreManager, toIdx int) {
	if c.cm == to {
		return
	}
	c.cm.deregister(c)
	if !c.quarantined && c.buf.Len() > 0 {
		c.drainNow(false)
	}
	c.cm, c.core, c.cmIndex = to, to.core, toIdx
	c.reserveNext()
}

// flush consumes whatever remains at the end of the run. A quarantined
// consumer's leftovers are dropped, not delivered — its handler is
// known-broken (this arises only when the breaker opened with items
// still buffered, which the drain-then-quarantine order precludes; the
// guard keeps conservation honest regardless).
func (c *consumer) flush() {
	if c.buf.Len() == 0 {
		return
	}
	if c.quarantined {
		c.m.Dropped += uint64(len(c.buf.Drain()))
		return
	}
	now := c.loop.Now()
	batch := c.buf.Drain()
	c.m.Invocations++
	c.m.Consume(now, batch)
	c.core.RunFor(c.invokeOverhead + simtime.Duration(len(batch))*c.perItemWork)
}

// reserveNext delegates to the shared planner and applies its decision.
func (c *consumer) reserveNext() {
	if c.quarantined {
		return
	}
	now := c.loop.Now()
	plan := c.planner.Next(now, c.pred.Predict(), c.buf.Len(), c.cm, c.requestQuota)
	if !plan.Reserve {
		return
	}
	if plan.Quota >= 0 {
		c.quota = plan.Quota
	}
	c.cm.reserve(c, plan.Slot)
}

// requestQuota negotiates capacity with the global pool (Fig. 8).
func (c *consumer) requestQuota(want int) int {
	return c.pool.Request(c.id, want)
}
