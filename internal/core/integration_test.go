package core

import (
	"math/rand"
	"testing"

	"repro/internal/impls"
	"repro/internal/simtime"
	"repro/internal/trace"
)

// TestPropertyRandomWorkloads runs PBPL over randomized configurations
// and checks every run-level invariant: item conservation, the
// response-latency bound, internal counter consistency, and pool
// integrity (checked inside Run). This is the failure-injection net for
// the planner's edge cases — trickle rates, saturating bursts, tiny
// buffers, many consumers on one core.
func TestPropertyRandomWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 30; trial++ {
		dur := simtime.Duration(1+rng.Intn(3)) * simtime.Second
		pairs := 1 + rng.Intn(8)
		buffer := 4 + rng.Intn(97)
		var rate trace.Rate
		switch rng.Intn(4) {
		case 0:
			rate = trace.Constant(float64(10 + rng.Intn(5000)))
		case 1:
			rate = trace.Sinusoid{
				Base:   float64(100 + rng.Intn(4000)),
				Depth:  rng.Float64() * 1.5,
				Period: dur / simtime.Duration(1+rng.Intn(4)),
			}
		case 2:
			rate = trace.Burst{
				Start: simtime.Time(rng.Int63n(int64(dur))),
				Peak:  float64(1000 + rng.Intn(20000)),
				Rise:  50 * simtime.Millisecond,
				Decay: simtime.Duration(100+rng.Intn(400)) * simtime.Millisecond,
			}
		default:
			rate = trace.WorldCup(trace.WorldCupConfig{
				BaseRate:     float64(100 + rng.Intn(3000)),
				DiurnalDepth: rng.Float64(),
				Period:       dur,
				Bursts:       rng.Intn(5),
				BurstPeak:    float64(rng.Intn(10000)),
				BurstRise:    50 * simtime.Millisecond,
				BurstDecay:   300 * simtime.Millisecond,
				Horizon:      dur,
				Seed:         rng.Int63(),
			})
		}
		base := trace.Generate(rate, dur, rng.Int63())
		cfg := DefaultConfig(impls.DefaultConfig(base.PhaseShifts(pairs), buffer))
		cfg.SlotSize = simtime.Duration(1+rng.Intn(10)) * simtime.Millisecond
		cfg.MaxLatency = cfg.SlotSize * simtime.Duration(5+rng.Intn(30))
		cfg.Headroom = 0.5 + rng.Float64()*0.5
		cfg.DisableLatching = rng.Intn(4) == 0
		cfg.DisableResizing = rng.Intn(4) == 0
		cfg.DisablePrediction = rng.Intn(6) == 0

		r, err := Run(cfg)
		if err != nil {
			t.Fatalf("trial %d (%+v): %v", trial, cfg, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if r.Produced != r.Consumed {
			t.Fatalf("trial %d: conservation %d vs %d", trial, r.Produced, r.Consumed)
		}
		bound := cfg.MaxLatency + 2*cfg.SlotSize
		if r.MaxLatency > bound {
			t.Fatalf("trial %d: latency %v exceeds bound %v (slot %v, pairs %d, buffer %d)",
				trial, r.MaxLatency, bound, cfg.SlotSize, pairs, buffer)
		}
		if r.AttributedWakeups != r.Wakeups {
			t.Fatalf("trial %d: PBPL attribution mismatch", trial)
		}
	}
}

// TestPoolExhaustionBurst drives one consumer far beyond what the
// global pool can lend while its peers stay busy enough to keep their
// quotas: the overloaded consumer must degrade to frequent scheduled
// wakes and overflows without losing items or breaking the bound.
func TestPoolExhaustionBurst(t *testing.T) {
	dur := simtime.Duration(3 * simtime.Second)
	steady := trace.Generate(trace.Constant(2500), dur, 1)
	flood := trace.Generate(trace.Constant(30000), dur, 2)
	traces := []trace.Trace{steady, steady, steady, steady, flood}
	cfg := DefaultConfig(impls.DefaultConfig(traces, 16))
	r := runPBPL(t, cfg)
	if r.Produced != r.Consumed {
		t.Fatalf("conservation: %d vs %d", r.Produced, r.Consumed)
	}
	if r.Overflows == 0 {
		t.Fatal("a 30k/s flood into a 16-item buffer must overflow")
	}
	bound := cfg.MaxLatency + 2*cfg.SlotSize
	if r.MaxLatency > bound {
		t.Fatalf("latency %v exceeds bound %v under flood", r.MaxLatency, bound)
	}
}
