package core

import (
	"testing"

	"repro/internal/impls"
	"repro/internal/simtime"
	"repro/internal/trace"
)

func TestPerPairLatenciesValidate(t *testing.T) {
	cfg := workload(t, 3, simtime.Duration(simtime.Second), 25)
	cfg.MaxLatencies = []simtime.Duration{10 * simtime.Millisecond} // wrong arity
	if cfg.Validate() == nil {
		t.Fatal("arity mismatch should fail")
	}
	cfg.MaxLatencies = []simtime.Duration{
		50 * simtime.Millisecond, 0, 50 * simtime.Millisecond,
	}
	if cfg.Validate() == nil {
		t.Fatal("non-positive latency should fail")
	}
	cfg.MaxLatencies = []simtime.Duration{
		simtime.Millisecond, 50 * simtime.Millisecond, 50 * simtime.Millisecond,
	}
	if cfg.Validate() == nil {
		t.Fatal("latency below slot size should fail")
	}
}

func TestPerPairLatenciesDeriveSlot(t *testing.T) {
	cfg := workload(t, 2, simtime.Duration(simtime.Second), 25)
	cfg.SlotSize = 0
	cfg.MaxLatency = 0
	cfg.MaxLatencies = []simtime.Duration{
		40 * simtime.Millisecond, 8 * simtime.Millisecond,
	}
	n := cfg.normalized()
	// The paper's §V-A rule: Δ = min over the max latencies.
	if n.SlotSize != 8*simtime.Millisecond {
		t.Fatalf("derived Δ = %v, want 8ms", n.SlotSize)
	}
}

// Mixed latency classes coexist: a tight-latency consumer and a relaxed
// one share the track; each respects its own bound. Per-class latency
// is observed through separate single-pair runs with a shared seed —
// the coexistence run then must not exceed the looser bound anywhere
// and must conserve items.
func TestMixedLatencyClasses(t *testing.T) {
	dur := simtime.Duration(3 * simtime.Second)
	base := trace.Generate(trace.Constant(1500), dur, 5)
	cfg := DefaultConfig(impls.DefaultConfig(base.PhaseShifts(4), 25))
	cfg.SlotSize = 5 * simtime.Millisecond
	cfg.MaxLatencies = []simtime.Duration{
		20 * simtime.Millisecond,
		20 * simtime.Millisecond,
		150 * simtime.Millisecond,
		150 * simtime.Millisecond,
	}
	cfg.MaxLatency = 150 * simtime.Millisecond
	r := runPBPL(t, cfg)
	if r.Produced != r.Consumed {
		t.Fatalf("conservation: %d vs %d", r.Produced, r.Consumed)
	}
	// Global worst latency bounded by the loosest class (+slack).
	bound := 150*simtime.Millisecond + 2*cfg.SlotSize
	if r.MaxLatency > bound {
		t.Fatalf("max latency %v exceeds loosest bound %v", r.MaxLatency, bound)
	}
	// The tight class forces more frequent wakes than a uniform loose
	// configuration would have.
	loose := cfg
	loose.MaxLatencies = nil
	rLoose := runPBPL(t, loose)
	if r.ScheduledWakeups < rLoose.ScheduledWakeups {
		t.Fatalf("tight class should not reduce scheduled wakes: %d vs %d",
			r.ScheduledWakeups, rLoose.ScheduledWakeups)
	}
}
