package core

import (
	"repro/internal/buffer"
	"repro/internal/faults"
	"repro/internal/impls"
	"repro/internal/metrics"
	"repro/internal/place"
	"repro/internal/sim"
	"repro/internal/simtime"
	"repro/internal/track"
)

// Run executes PBPL (or a configured ablation) against the workload and
// returns its metrics report. The architecture follows Fig. 5: one core
// manager per core, consumers partitioned across cores (pair i on core
// i mod Cores, disjoint sets C_αl), one global buffer pool of
// Bg = B0 · M shared by all consumers.
func Run(cfg Config) (metrics.Report, error) {
	if err := cfg.Validate(); err != nil {
		return metrics.Report{}, err
	}
	cfg = cfg.normalized()
	base := cfg.Base

	if base.ConsumerCores == 0 {
		base.ConsumerCores = 1
	}
	machine := sim.NewMachine(base.Cores, base.Model)
	m := &metrics.Collector{}
	tr := track.New(cfg.SlotSize, 0)

	managers := make([]*coreManager, base.ConsumerCores)
	for i := range managers {
		managers[i] = newCoreManager(machine.Core(i), machine.Loop, tr)
	}

	pairs := len(base.Traces)
	pool := buffer.NewPool(base.Buffer, pairs, cfg.MinQuota)

	model := base.Model
	planner := cfg.Planner(base)

	consumers := make([]*consumer, pairs)
	for i := range consumers {
		cm := managers[i%base.ConsumerCores]
		// Per-pair response latencies (§IV): each consumer plans with
		// its own bound over the shared track.
		pl := planner
		if len(cfg.MaxLatencies) > 0 {
			own := *planner
			own.MaxLatency = cfg.MaxLatencies[i]
			pl = &own
		}
		consumers[i] = &consumer{
			id:             i,
			cm:             cm,
			cmIndex:        i % base.ConsumerCores,
			core:           cm.core,
			loop:           machine.Loop,
			pool:           pool,
			pred:           cfg.Predictor(),
			m:              m,
			planner:        pl,
			traceSink:      base.TraceSink,
			quota:          base.Buffer,
			reservedSlot:   -1,
			perItemWork:    base.PerItemWork,
			invokeOverhead: base.InvokeOverhead,
		}
		if len(cfg.FaultProfiles) > 0 {
			if pr := cfg.FaultProfiles[i]; !pr.Zero() {
				consumers[i].inj = faults.NewInjector(pr)
			}
			consumers[i].quarantineAfter = cfg.QuarantineAfter
		}
	}

	for i, t := range base.Traces {
		c := consumers[i]
		pcore := producerCoreFor(machine, base, i)
		if pcore == nil {
			feedTrace(machine.Loop, t.Arrivals, c.onArrival)
			continue
		}
		work := base.ProducerWork
		feedTrace(machine.Loop, t.Arrivals, func(at simtime.Time) {
			pcore.RunFor(work)
			c.onArrival(at)
		})
	}

	// The consolidation control plane: a periodic event snapshots every
	// consumer's predicted rate and host manager, plans, and applies the
	// moves — the sim mirror of the live runtime's placement controller.
	var migrations uint64
	var placePl *place.Planner
	if cfg.Consolidate && base.ConsumerCores > 1 {
		pl, err := place.NewPlanner(place.Config{
			Managers:   base.ConsumerCores,
			BudgetRate: cfg.PlaceBudgetRate,
		})
		if err != nil {
			return metrics.Report{}, err
		}
		placePl = pl
		interval := simtime.Time(cfg.PlaceInterval)
		end := simtime.Time(base.Duration())
		var replan func()
		replan = func() {
			snap := make([]place.Pair, len(consumers))
			for i, c := range consumers {
				rate := c.pred.Predict()
				if c.quarantined {
					// A quarantined consumer never drains again; its
					// stale predicted rate must not count as load.
					rate = 0
				}
				snap[i] = place.Pair{
					ID:       i,
					Manager:  c.cmIndex,
					Rate:     rate,
					Buffered: c.buf.Len(),
				}
			}
			plan := pl.Plan(snap)
			for _, mv := range plan.Moves {
				consumers[mv.Pair].migrate(managers[mv.To], mv.To)
				migrations++
			}
			if next := machine.Loop.Now() + interval; next < end {
				machine.Loop.Schedule(next, replan)
			}
		}
		machine.Loop.Schedule(interval, replan)
	}

	// The power-cap control plane: a periodic event measures windowed
	// estimated power over every core and walks the throttle ladder —
	// inflating placement budgets (pack pairs onto fewer cores),
	// scaling every planner's ω (consumers batch harder inside their
	// latency bounds) and lowering the cores' DVFS operating point —
	// to keep the smoothed estimate under the budget. Sim mirror of
	// the live runtime's WithPowerCap controller.
	var capCtl *CapControl
	minFreq := 1.0
	if cfg.PowerCapMilliwatts > 0 {
		capCtl = NewCapControl(cfg.PowerCapMilliwatts, cfg.PowerCapPace)
		omegaScale := planner.Scale
		if omegaScale == nil {
			// Per-pair planner copies made above share this handle, so
			// one Set throttles every consumer.
			omegaScale = &OmegaScale{}
			planner.Scale = omegaScale
			for _, c := range consumers {
				c.planner.Scale = omegaScale
			}
		}
		baseBudget := cfg.PlaceBudgetRate
		if baseBudget <= 0 {
			baseBudget = place.DefaultBudgetRate
		}
		idleFloor := model.IdleFloorMilliwatts(base.Cores)
		interval := simtime.Time(cfg.PowerCapInterval)
		end := simtime.Time(base.Duration())
		var lastE float64
		var lastT simtime.Time
		tick := func() {}
		tick = func() {
			now := machine.Loop.Now()
			res := machine.Snapshot()
			var e float64
			for i := 0; i < base.Cores; i++ {
				e += model.EnergyMillijoules(res[i])
			}
			if dt := now.Sub(lastT); dt > 0 {
				// Application-attributable power: energy above the
				// all-idle floor, over every core (consumer managers
				// and producers alike — all carry an operating point).
				// The constant background draw is excluded — no
				// throttle can remove it, so a cap that included it
				// would go infeasible at light load.
				win := (e-lastE)/dt.Seconds() - idleFloor
				if capCtl.Observe(win) {
					st := capCtl.Step()
					omegaScale.Set(st.OmegaScale)
					if placePl != nil {
						budgets := make([]float64, base.ConsumerCores)
						for i := range budgets {
							budgets[i] = baseBudget * st.BudgetScale
						}
						placePl.SetBudgets(budgets)
					}
					for i := 0; i < base.Cores; i++ {
						machine.Core(i).SetFrequency(st.Freq)
					}
					if st.Freq < minFreq {
						minFreq = st.Freq
					}
				}
				if cfg.CapTrace != nil {
					cfg.CapTrace(now, capCtl.Smoothed(), capCtl.StepIndex())
				}
				lastE, lastT = e, now
			}
			if next := now + interval; next < end {
				machine.Loop.Schedule(next, tick)
			}
		}
		machine.Loop.Schedule(interval, tick)
	}

	machine.Loop.RunUntil(simtime.Time(base.Duration()))
	for _, c := range consumers {
		c.flush()
	}

	// Assemble the report (mirrors impls.report, which is unexported
	// and parameterized on the impls.Algorithm type).
	res := machine.Finish()
	dur := base.Duration()
	// Consumer-core attribution for wakeups/usage, board-level power —
	// matching the baseline harness (see impls.report).
	var usageMs, shallowMs, idleMs float64
	var wakeups uint64
	for i, r := range res {
		if i < base.ConsumerCores {
			usageMs += float64(r.Active) / float64(simtime.Millisecond)
			shallowMs += float64(r.Shallow) / float64(simtime.Millisecond)
			idleMs += float64(r.Idle) / float64(simtime.Millisecond)
			wakeups += r.Wakeups
		}
	}
	var scheduled uint64
	for _, cm := range managers {
		scheduled += cm.scheduledWakes
	}
	avgBuffer := float64(base.Buffer)
	if !cfg.DisableResizing && pool.MeanQuota() > 0 {
		avgBuffer = pool.MeanQuota()
	}
	rep := metrics.Report{
		Impl:              cfg.ImplName(),
		Pairs:             pairs,
		Cores:             base.Cores,
		Duration:          dur,
		Produced:          m.Produced,
		Consumed:          m.Consumed,
		Dropped:           m.Dropped,
		Quarantines:       m.Quarantines,
		Wakeups:           wakeups,
		AttributedWakeups: wakeups,
		Invocations:       m.Invocations,
		ScheduledWakeups:  scheduled,
		Overflows:         m.Overflows,
		Migrations:        migrations,
		UsageMs:           usageMs,
		ShallowMs:         shallowMs,
		DeepIdleMs:        idleMs,
		PowerMilliwatts:   model.ExtraPowerMilliwatts(res, dur),
		EnergyMillijoules: model.TotalEnergyMillijoules(res, dur),
		AvgBufferQuota:    avgBuffer,
		CapMilliwatts:     cfg.PowerCapMilliwatts,
		MaxLatency:        m.MaxLatency,
		SumLatency:        m.SumLatency,
		LatencyP50:        m.Latencies.Percentile(50),
		LatencyP99:        m.Latencies.Percentile(99),
	}
	if capCtl != nil {
		rep.ThrottleEvents = capCtl.ThrottleEvents()
		rep.MinFrequency = minFreq
	}
	if err := pool.CheckInvariant(); err != nil {
		return rep, err
	}
	return rep, nil
}

// producerCoreFor mirrors the baseline harness's producer placement:
// producers round-robin over the non-consumer cores, or run externally
// (nil) when there is no spare core or no producer cost.
func producerCoreFor(machine *sim.Machine, base impls.Config, i int) *sim.Core {
	spare := base.Cores - base.ConsumerCores
	if spare <= 0 || base.ProducerWork <= 0 {
		return nil
	}
	return machine.Core(base.ConsumerCores + i%spare)
}

// feedTrace chains arrival events so the heap stays O(pairs); identical
// in spirit to the baseline harness's feed.
func feedTrace(loop *simtime.Loop, arrivals []simtime.Time, onArrival func(simtime.Time)) {
	if len(arrivals) == 0 {
		return
	}
	var idx int
	var step func()
	step = func() {
		at := arrivals[idx]
		onArrival(at)
		idx++
		if idx < len(arrivals) {
			loop.Schedule(arrivals[idx], step)
		}
	}
	loop.Schedule(arrivals[0], step)
}

// Name is the canonical implementation label used in figures.
const Name = "pbpl"
