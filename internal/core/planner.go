package core

import (
	"math"
	"sync/atomic"

	"repro/internal/simtime"
	"repro/internal/track"
)

// Reservations is the view of a core manager's slot bookings a planner
// consults: whether a slot is already booked (w(s)=0 in Eq. 8) and the
// backtracking helper of §V-C.
type Reservations interface {
	// Has reports whether the slot holds at least one reservation.
	Has(slot int64) bool
	// PrevReserved returns the latest reserved slot strictly inside
	// (after, before).
	PrevReserved(before, after int64) (int64, bool)
}

// Plan is a reservation decision.
type Plan struct {
	// Reserve is false when the consumer should hold no reservation
	// (idle stream; the next arrival re-arms it).
	Reserve bool
	// Slot is the chosen slot index (meaningful when Reserve).
	Slot int64
	// Quota is the buffer capacity granted for the plan, or -1 when
	// resizing is disabled and the quota should stay at B0.
	Quota int
}

// Planner is the pure decision core of the PBPL consumer (§V-C):
// prediction-driven slot selection with latching via Eq. 8 and dynamic
// buffer sizing against a shared pool. Both the simulator's consumer
// and the live runtime execute exactly this planner; they differ only
// in how "now" advances and how reservations fire.
type Planner struct {
	Track      track.Track
	B0         int // preferred per-consumer buffer size
	MaxLatency simtime.Duration
	Headroom   float64 // target buffer utilization η

	// Eq. 8 energy constants, µJ.
	OmegaMicro    float64 // ω: one wakeup
	PerItemMicro  float64 // e(1): one item
	OverheadMicro float64 // fixed invocation overhead

	DisableLatching   bool
	DisableResizing   bool
	DisablePrediction bool

	// Scale is an optional shared runtime multiplier on OmegaMicro.
	// The power-cap controller raises it to make new slots costlier
	// than latched ones, so consumers batch harder inside their
	// latency bounds. Nil means 1. Copied planners (per-pair latency
	// variants) share the handle, so one Set throttles them all.
	Scale *OmegaScale
}

// OmegaScale is a concurrency-safe multiplier on a planner's ω. Manager
// goroutines read it on every cost evaluation while the power-cap
// controller stores to it; the zero value (and a nil handle) means 1.
type OmegaScale struct{ bits atomic.Uint64 }

// Set stores the multiplier (1 restores the configured cost).
func (s *OmegaScale) Set(f float64) { s.bits.Store(math.Float64bits(f)) }

// Get returns the current multiplier; nil and zero both read as 1.
func (s *OmegaScale) Get() float64 {
	if s == nil {
		return 1
	}
	bits := s.bits.Load()
	if bits == 0 {
		return 1
	}
	return math.Float64frombits(bits)
}

// omega returns the effective per-wakeup cost OmegaMicro × Scale.
func (pl *Planner) omega() float64 { return pl.OmegaMicro * pl.Scale.Get() }

// cost is Eq. 8: ρ(s) = (w(s) + e(n)) / n with n = r̂·(s−now), where
// e(n) includes the invocation's fixed overhead (which is what makes
// needlessly tiny latched batches expensive per item and terminates
// backtracking).
func (pl *Planner) cost(slot int64, now simtime.Time, rhat float64, res Reservations) float64 {
	gap := pl.Track.Start(slot).Sub(now).Seconds()
	n := rhat * gap
	if n < 1e-9 {
		n = 1e-9
	}
	w := 0.0
	if pl.DisableLatching || !res.Has(slot) {
		w = pl.omega()
	}
	return (w + pl.OverheadMicro + n*pl.PerItemMicro) / n
}

// Next runs the §V-C reservation procedure.
//
//   - now: the invocation (or arming) instant
//   - rhat: the predicted production rate, items/s
//   - buffered: items currently in the consumer's buffer
//   - res: the core manager's reservation view
//   - request: pool quota negotiation; given the desired capacity it
//     returns the granted capacity. nil (or DisableResizing) keeps B0.
func (pl *Planner) Next(now simtime.Time, rhat float64, buffered int, res Reservations, request func(int) int) Plan {
	nowSlot := pl.Track.Index(now)

	if pl.DisablePrediction {
		// Ablation: plain periodic batching on the track (every slot),
		// latched by construction since all consumers share slots.
		return Plan{Reserve: true, Slot: nowSlot + 1, Quota: -1}
	}

	maxLatSec := pl.MaxLatency.Seconds()
	if rhat*maxLatSec < 0.5 {
		// Effectively idle: less than half an item expected within the
		// whole latency window (this also absorbs floating-point
		// residue a windowed average leaves after a stream goes quiet).
		if buffered == 0 {
			return Plan{Reserve: false, Quota: -1}
		}
		maxSlot := pl.Track.Index(now.Add(pl.MaxLatency))
		if maxSlot <= nowSlot {
			maxSlot = nowSlot + 1
		}
		if !pl.DisableLatching {
			// Latch onto the latest already-reserved slot inside the
			// latency bound: a free ride by Eq. 8 with w=0.
			if s, ok := res.PrevReserved(maxSlot+1, nowSlot); ok {
				return Plan{Reserve: true, Slot: s, Quota: -1}
			}
		}
		if rhat <= 0 {
			// Cold start with buffered items: peek at the very next
			// slot to start learning the rate quickly.
			return Plan{Reserve: true, Slot: nowSlot + 1, Quota: -1}
		}
		// Trickle stream: serve the stragglers at the latency bound.
		return Plan{Reserve: true, Slot: maxSlot, Quota: -1}
	}

	// Candidate start: g(now + B/r̂), clamped by the response-latency
	// bound and to the strict future. (Compare in seconds first: a
	// near-zero rate would overflow the Duration conversion.)
	fill := pl.MaxLatency
	if fillSec := float64(pl.B0) / rhat; fillSec < maxLatSec {
		fill = simtime.DurationOfSeconds(fillSec)
	}
	best := pl.Track.Index(now.Add(fill))
	if best <= nowSlot {
		best = nowSlot + 1
	}
	bestCost := pl.cost(best, now, rhat, res)

	if !pl.DisableLatching {
		// Backtrack through reserved slots while the cost decreases;
		// "if the jth slot being evaluated has higher ρ than its
		// predecessor, it is safe to assume that no better slots can
		// be found by further backtracking."
		j := best
		for {
			prev, ok := res.PrevReserved(j, nowSlot)
			if !ok {
				break
			}
			c := pl.cost(prev, now, rhat, res)
			if c > bestCost {
				break
			}
			best, bestCost = prev, c
			j = prev
		}
	}

	quota := -1
	if !pl.DisableResizing && request != nil {
		// Downsize to the predicted need (over the target utilization η
		// so arrival noise has headroom, never below half the preferred
		// size); upsize from the pool when the plan requires more than
		// we hold. If the pool cannot cover the plan, keep what was
		// granted and pull the reservation to the slot that capacity
		// can sustain.
		gap := pl.Track.Start(best).Sub(now)
		need := int(math.Ceil(rhat * gap.Seconds() / pl.Headroom))
		if floor := (pl.B0 + 1) / 2; need < floor {
			need = floor
		}
		granted := request(need)
		quota = granted
		if granted < need {
			sustain := simtime.DurationOfSeconds(float64(granted) * pl.Headroom / rhat)
			s := pl.Track.Index(now.Add(sustain))
			if s <= nowSlot {
				s = nowSlot + 1
			}
			if s < best {
				best = s
			}
		}
	}

	return Plan{Reserve: true, Slot: best, Quota: quota}
}
