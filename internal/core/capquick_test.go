package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestQuickCapLadderShape property-checks both throttle ladders: rung 0
// is the identity, budget inflation and ω scaling only ever tighten
// (monotone nondecreasing) while the operating point only ever drops,
// frequencies stay in (0, 1], and the two policies share a terminal
// rung — the policy-independent draw floor.
func TestQuickCapLadderShape(t *testing.T) {
	for _, pace := range []bool{false, true} {
		ladder := CapLadder(pace)
		if len(ladder) < 2 {
			t.Fatalf("pace=%v: ladder has %d rungs", pace, len(ladder))
		}
		if first := ladder[0]; first != (CapStep{BudgetScale: 1, OmegaScale: 1, Freq: 1}) {
			t.Errorf("pace=%v: rung 0 = %+v, want identity", pace, first)
		}
		for i := 1; i < len(ladder); i++ {
			prev, cur := ladder[i-1], ladder[i]
			if cur.BudgetScale < prev.BudgetScale || cur.OmegaScale < prev.OmegaScale {
				t.Errorf("pace=%v: rung %d relaxes batching/placement: %+v -> %+v", pace, i, prev, cur)
			}
			if cur.Freq > prev.Freq {
				t.Errorf("pace=%v: rung %d raises frequency: %+v -> %+v", pace, i, prev, cur)
			}
			if cur.Freq <= 0 || cur.Freq > 1 {
				t.Errorf("pace=%v: rung %d frequency %v outside (0, 1]", pace, i, cur.Freq)
			}
			if cur == prev {
				t.Errorf("pace=%v: rung %d is a no-op step: %+v", pace, i, cur)
			}
		}
	}
	race, pace := CapLadder(false), CapLadder(true)
	if race[len(race)-1] != pace[len(pace)-1] {
		t.Errorf("terminal rungs differ: race %+v, pace %+v", race[len(race)-1], pace[len(pace)-1])
	}
}

// capPlant is the synthetic plant the controller properties drive: each
// ladder rung multiplies the offered power by a fixed attenuation, so
// deeper rungs always draw less — the monotonicity the real ladders
// provide by construction.
func capPlant(offered float64, atten []float64) func(step int) float64 {
	return func(step int) float64 {
		p := offered
		for i := 0; i < step && i < len(atten); i++ {
			p *= atten[i]
		}
		return p
	}
}

// quickAtten folds arbitrary bytes into per-rung attenuation factors in
// [0.7, 0.95] — every escalation removes 5–30% of the remaining draw.
// The floor matters: the hysteresis band tolerates adjacent rungs whose
// power ratio stays under cap/relax (≈1.67) without a relax probe ever
// overshooting the cap, and under arm/relax (≈1.42) without even
// re-arming; a plant steeper than the ladders the controller actually
// drives would test a guarantee the design never made.
func quickAtten(raw []byte, rungs int) []float64 {
	atten := make([]float64, rungs)
	for i := range atten {
		b := byte(0)
		if len(raw) > 0 {
			b = raw[i%len(raw)]
		}
		atten[i] = 0.7 + 0.25*float64(b)/255
	}
	return atten
}

// TestQuickCapControlConvergesUnderCap property-checks the closed loop
// against the synthetic plant: for any offered load and any monotone
// plant response, as long as the terminal rung can satisfy the budget,
// the controller reaches a steady state whose windowed power sits under
// the cap — and once there it stops moving (no oscillation without a
// load change).
func TestQuickCapControlConvergesUnderCap(t *testing.T) {
	prop := func(rawOffered float64, rawAtten []byte, pace bool) bool {
		cap := 1000.0
		// Offered load from 0.1× to ~100× the cap.
		frac := math.Abs(rawOffered)
		frac = frac - math.Floor(frac)
		offered := cap * (0.1 + 100*frac)
		cc := NewCapControl(cap, pace)
		rungs := len(cc.Ladder)
		atten := quickAtten(rawAtten, rungs-1)
		plant := capPlant(offered, atten)
		if plant(rungs-1) > CapArmFraction*cap {
			// Infeasible plant: the floor exceeds the arm point. The
			// controller can only saturate; assert exactly that.
			for i := 0; i < 4*rungs; i++ {
				cc.Observe(plant(cc.StepIndex()))
			}
			return cc.StepIndex() == rungs-1
		}
		// Feasible: within a few traversals the loop must settle under
		// the arm threshold and then hold its rung.
		for i := 0; i < 4*rungs; i++ {
			cc.Observe(plant(cc.StepIndex()))
		}
		settled := cc.StepIndex()
		if plant(settled) > CapArmFraction*cap {
			return false
		}
		// Steady state: relaxation may still walk rungs down (calm
		// ticks), but only while the shallower rung also satisfies the
		// budget; the windowed power must never cross the cap again.
		for i := 0; i < 8*rungs*CapCalmTicks; i++ {
			win := plant(cc.StepIndex())
			if win > cap {
				return false
			}
			cc.Observe(win)
		}
		return plant(cc.StepIndex()) <= cap
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickCapControlNeverThrottlesWithSlack property-checks the other
// steady state: windows that never reach the arm threshold never move
// the ladder, whatever their order — headroom is free.
func TestQuickCapControlNeverThrottlesWithSlack(t *testing.T) {
	prop := func(rawWins []byte, pace bool) bool {
		cap := 500.0
		cc := NewCapControl(cap, pace)
		for _, b := range rawWins {
			win := CapArmFraction * cap * float64(b) / 256
			cc.Observe(win)
			if cc.Throttled() || cc.ThrottleEvents() != 0 || cc.StepIndex() != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
