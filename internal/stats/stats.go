// Package stats provides the small statistical toolkit the experiment
// harness needs: summary statistics, Student-t 95% confidence
// intervals, Pearson correlation, and simple linear regression.
//
// The paper (§III-B, §VI) reports every metric as a mean over 3
// replicates with a 95% confidence interval, and argues its central
// claim through the correlation between wakeups/s and power. This
// package reproduces those computations.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element; 0 for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element; 0 for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation between closest ranks. The input need not be sorted.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// tTable95 holds two-sided 97.5% Student-t critical values by degrees of
// freedom (index = df). Values beyond the table fall back to the normal
// approximation 1.96. df=0 is unusable and mapped to +Inf.
var tTable95 = []float64{
	math.Inf(1),
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for the
// given degrees of freedom.
func TCritical95(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(tTable95) {
		return tTable95[df]
	}
	return 1.96
}

// Summary describes a sample with its 95% confidence interval, matching
// how the paper reports each measured metric.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	CI95   float64 // half-width of the 95% confidence interval
}

// Summarize computes a Summary over the replicate values xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Mean: Mean(xs), StdDev: StdDev(xs)}
	if s.N >= 2 {
		s.CI95 = TCritical95(s.N-1) * s.StdDev / math.Sqrt(float64(s.N))
	}
	return s
}

// Lo returns the lower bound of the 95% CI.
func (s Summary) Lo() float64 { return s.Mean - s.CI95 }

// Hi returns the upper bound of the 95% CI.
func (s Summary) Hi() float64 { return s.Mean + s.CI95 }

// Pearson returns the Pearson product-moment correlation coefficient of
// the paired samples, in [-1, 1]. It returns an error if fewer than two
// pairs are supplied, the slices differ in length, or either series has
// zero variance.
func Pearson(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, errors.New("stats: series length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: zero variance")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Linear holds the result of an ordinary least squares fit y = a + b·x.
type Linear struct {
	Intercept float64
	Slope     float64
	R2        float64
}

// FitLinear performs ordinary least squares on the paired samples.
func FitLinear(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, errors.New("stats: series length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return Linear{}, ErrInsufficientData
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 {
		return Linear{}, errors.New("stats: x has zero variance")
	}
	b := sxy / sxx
	fit := Linear{Intercept: my - b*mx, Slope: b}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// CorrelationSignificant reports whether a correlation r over n pairs is
// significantly different from zero at the given two-sided t critical
// value for n-2 degrees of freedom, using the standard
// t = r·sqrt((n-2)/(1-r²)) test. The paper runs exactly this hypothesis
// test ("wakeups have a significant effect on power", accepted at 99%
// confidence); we expose the 95% and 99% variants.
func CorrelationSignificant(r float64, n int, confidence float64) bool {
	if n < 3 || math.Abs(r) >= 1 {
		return math.Abs(r) >= 1 && n >= 2
	}
	t := math.Abs(r) * math.Sqrt(float64(n-2)/(1-r*r))
	df := n - 2
	var crit float64
	switch {
	case confidence >= 0.99:
		crit = tCritical99(df)
	default:
		crit = TCritical95(df)
	}
	return t > crit
}

// tTable99 holds two-sided 99.5% Student-t critical values (for 99%
// confidence), indexed by degrees of freedom.
var tTable99 = []float64{
	math.Inf(1),
	63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
	3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
}

func tCritical99(df int) float64 {
	if df <= 0 {
		return math.Inf(1)
	}
	if df < len(tTable99) {
		return tTable99[df]
	}
	return 2.576
}

// RelativeChange returns (to-from)/from, the signed fractional change
// used throughout the paper ("lowers power consumption by 20%" is a
// RelativeChange of -0.20). It returns 0 when from is 0.
func RelativeChange(from, to float64) float64 {
	if from == 0 {
		return 0
	}
	return (to - from) / from
}
