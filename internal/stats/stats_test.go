package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-12)
	approx(t, "Variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
}

func TestEmptyAndSingleton(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty input should give zeros")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("singleton variance should be 0")
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty min/max should be 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min=%v Max=%v", Min(xs), Max(xs))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	approx(t, "P0", Percentile(xs, 0), 1, 0)
	approx(t, "P50", Percentile(xs, 50), 3, 0)
	approx(t, "P100", Percentile(xs, 100), 5, 0)
	approx(t, "P25", Percentile(xs, 25), 2, 1e-12)
	approx(t, "P90", Percentile(xs, 90), 4.6, 1e-12)
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
}

func TestSummarize(t *testing.T) {
	// Three replicates, like the paper.
	xs := []float64{10, 12, 14}
	s := Summarize(xs)
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	approx(t, "Mean", s.Mean, 12, 1e-12)
	approx(t, "StdDev", s.StdDev, 2, 1e-12)
	// t(df=2, 95%) = 4.303; CI = 4.303*2/sqrt(3)
	approx(t, "CI95", s.CI95, 4.303*2/math.Sqrt(3), 1e-9)
	approx(t, "Lo", s.Lo(), s.Mean-s.CI95, 0)
	approx(t, "Hi", s.Hi(), s.Mean+s.CI95, 0)
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{5})
	if s.CI95 != 0 {
		t.Fatalf("singleton CI should be 0, got %v", s.CI95)
	}
}

func TestTCritical95(t *testing.T) {
	if !math.IsInf(TCritical95(0), 1) {
		t.Fatal("df=0 should be +Inf")
	}
	approx(t, "df=1", TCritical95(1), 12.706, 0)
	approx(t, "df=29", TCritical95(29), 2.045, 0)
	approx(t, "df=1000", TCritical95(1000), 1.96, 0)
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r, 1, 1e-12)

	neg := []float64{10, 8, 6, 4, 2}
	r, err = Pearson(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r, -1, 1e-12)
}

func TestPearsonErrors(t *testing.T) {
	if _, err := Pearson([]float64{1}, []float64{1}); err == nil {
		t.Fatal("want insufficient data error")
	}
	if _, err := Pearson([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("want length mismatch error")
	}
	if _, err := Pearson([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want zero variance error")
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 10000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := Pearson(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r) > 0.05 {
		t.Fatalf("independent samples correlated: r=%v", r)
	}
}

func TestFitLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	fit, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Intercept", fit.Intercept, 1, 1e-12)
	approx(t, "Slope", fit.Slope, 2, 1e-12)
	approx(t, "R2", fit.R2, 1, 1e-12)
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1}, []float64{2}); err == nil {
		t.Fatal("want error for single point")
	}
	if _, err := FitLinear([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("want error for zero x variance")
	}
	if _, err := FitLinear([]float64{1, 2, 3}, []float64{1, 2}); err == nil {
		t.Fatal("want length mismatch error")
	}
}

func TestCorrelationSignificant(t *testing.T) {
	// Strong correlation over few points: the paper's 5-implementation
	// +74% correlation over 15 samples is significant at 95%.
	if !CorrelationSignificant(0.74, 15, 0.95) {
		t.Error("r=0.74 n=15 should be significant at 95%")
	}
	if CorrelationSignificant(0.1, 5, 0.95) {
		t.Error("r=0.1 n=5 should not be significant")
	}
	if !CorrelationSignificant(0.9, 21, 0.99) {
		t.Error("r=0.9 n=21 should be significant at 99%")
	}
	if CorrelationSignificant(0.5, 3, 0.99) {
		t.Error("weak r over 3 points should not be significant at 99%")
	}
}

func TestRelativeChange(t *testing.T) {
	approx(t, "drop", RelativeChange(100, 80), -0.2, 1e-12)
	approx(t, "rise", RelativeChange(80, 100), 0.25, 1e-12)
	if RelativeChange(0, 5) != 0 {
		t.Fatal("zero base should give 0")
	}
}

// Property: Pearson is symmetric and invariant under positive affine
// transforms.
func TestPropertyPearsonInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = xs[i]*0.5 + rng.NormFloat64()
		}
		r1, err1 := Pearson(xs, ys)
		r2, err2 := Pearson(ys, xs)
		if err1 != nil || err2 != nil {
			return false
		}
		// Affine transform of x.
		tx := make([]float64, n)
		for i := range xs {
			tx[i] = 3*xs[i] + 7
		}
		r3, err3 := Pearson(tx, ys)
		if err3 != nil {
			return false
		}
		return math.Abs(r1-r2) < 1e-9 && math.Abs(r1-r3) < 1e-9 && r1 >= -1-1e-12 && r1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sample mean lies within [Min, Max].
func TestPropertyMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
				return true // skip pathological inputs
			}
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
