package tenant

import (
	"sync"
	"testing"
	"time"
)

func mustSet(t *testing.T, p *Pool, id string, b int) {
	t.Helper()
	if err := p.SetBudget(id, b); err != nil {
		t.Fatalf("SetBudget(%s,%d): %v", id, b, err)
	}
}

func checkInv(t *testing.T, p *Pool) {
	t.Helper()
	if err := p.CheckInvariant(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolBudgetGuaranteed(t *testing.T) {
	p := NewPool(100)
	mustSet(t, p, "a", 60)
	mustSet(t, p, "b", 40)
	if got := p.Acquire("a", 60); got != 60 {
		t.Fatalf("a within budget: got %d want 60", got)
	}
	if got := p.Acquire("b", 40); got != 40 {
		t.Fatalf("b within budget: got %d want 40", got)
	}
	// Pool is physically full: nothing more for anyone.
	if got := p.Acquire("a", 1); got != 0 {
		t.Fatalf("full pool granted %d", got)
	}
	checkInv(t, p)
	p.Release("a", 60)
	p.Release("b", 40)
	if _, used := p.Global(); used != 0 {
		t.Fatalf("usage after full release = %d", used)
	}
	checkInv(t, p)
}

func TestPoolSumBudgetsBounded(t *testing.T) {
	p := NewPool(100)
	mustSet(t, p, "a", 60)
	if err := p.SetBudget("b", 41); err == nil {
		t.Fatal("Σ budgets 101 > 100 accepted")
	}
	mustSet(t, p, "b", 40)
	if err := p.SetBudget("a", 61); err == nil {
		t.Fatal("resize pushing Σ budgets over global accepted")
	}
	checkInv(t, p)
}

func TestPoolBorrowFromUnreservedSlack(t *testing.T) {
	p := NewPool(100) // 30 unreserved
	mustSet(t, p, "a", 40)
	mustSet(t, p, "b", 30)
	// a can take budget + unreserved slack + b's idle budget.
	if got := p.Acquire("a", 100); got != 100 {
		t.Fatalf("a elastic acquire: got %d want 100", got)
	}
	checkInv(t, p)
	// b's budget was lent out; with the pool physically full b gets
	// nothing until a releases.
	if got := p.Acquire("b", 10); got != 0 {
		t.Fatalf("b on full pool: got %d", got)
	}
	p.Release("a", 50)
	if got := p.Acquire("b", 30); got != 30 {
		t.Fatalf("b after a released: got %d want 30", got)
	}
	checkInv(t, p)
}

func TestPoolActiveBudgetNotLent(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	p := NewPool(100)
	p.SetNow(func() time.Time { return now })
	mustSet(t, p, "a", 50)
	mustSet(t, p, "b", 50)

	// b is active at 30: its remaining 20 is lendable, its used 30 not.
	if got := p.Acquire("b", 30); got != 30 {
		t.Fatalf("b acquire: %d", got)
	}
	// a may take its own 50, plus b's lendable 20 = 70 max; b's used
	// 30 is shielded.
	if got := p.Acquire("a", 100); got != 70 {
		t.Fatalf("a elastic acquire: got %d want 70", got)
	}
	checkInv(t, p)
	// The lent 20 is physically held by a until it drains — reclaim
	// means no NEW borrows, not eviction. As soon as a releases, b's
	// budget is whole again and a cannot re-borrow it (b is active).
	if got := p.Acquire("b", 20); got != 0 {
		t.Fatalf("b on full pool: got %d", got)
	}
	p.Release("a", 20)
	if got := p.Acquire("b", 20); got != 20 {
		t.Fatalf("b reclaim after drain: got %d want 20", got)
	}
	if got := p.Acquire("a", 10); got != 0 {
		t.Fatalf("a re-borrow against active b: got %d", got)
	}
	checkInv(t, p)
}

func TestPoolRecentPeakShieldsBudget(t *testing.T) {
	base := time.Unix(1000, 0)
	now := base
	p := NewPool(100)
	p.SetNow(func() time.Time { return now })
	mustSet(t, p, "a", 50)
	mustSet(t, p, "b", 50)

	// b spikes to 40 then drains immediately.
	if got := p.Acquire("b", 40); got != 40 {
		t.Fatalf("b spike: %d", got)
	}
	p.Release("b", 40)

	// Immediately after the spike b's peak shields its budget: a can
	// borrow only b's never-used 10.
	if got := p.Acquire("a", 100); got != 60 {
		t.Fatalf("a right after b's spike: got %d want 60", got)
	}
	p.Release("a", 60)

	// After the decay window the whole idle budget is lendable again.
	now = now.Add(3 * lendTau)
	if got := p.Acquire("a", 100); got != 100 {
		t.Fatalf("a after decay: got %d want 100", got)
	}
	checkInv(t, p)
}

func TestPoolReclaimDeniedCounts(t *testing.T) {
	base := time.Unix(1000, 0)
	p := NewPool(100)
	p.SetNow(func() time.Time { return base })
	mustSet(t, p, "a", 50)
	mustSet(t, p, "b", 50)
	// b spikes to its full budget then partially drains: its recent
	// peak shields the whole budget, so nothing is lendable even
	// though physical slack exists.
	if got := p.Acquire("b", 50); got != 50 {
		t.Fatalf("b acquire: %d", got)
	}
	p.Release("b", 20)
	p.Acquire("a", 50)
	before := p.ReclaimDenied()
	if got := p.Acquire("a", 10); got != 0 {
		t.Fatalf("borrow against active b granted %d", got)
	}
	if p.ReclaimDenied() <= before {
		t.Fatal("reclaimDenied did not increase")
	}
}

func TestPoolGlobalShrinkDebt(t *testing.T) {
	p := NewPool(100)
	mustSet(t, p, "a", 100)
	if got := p.Acquire("a", 90); got != 90 {
		t.Fatalf("acquire: %d", got)
	}
	// Shrink below current usage: budgets must shrink first.
	if err := p.SetGlobal(50); err == nil {
		t.Fatal("SetGlobal(50) with Σ budgets 100 accepted")
	}
	mustSet(t, p, "a", 50)
	if err := p.SetGlobal(50); err != nil {
		t.Fatalf("SetGlobal(50): %v", err)
	}
	checkInv(t, p) // usage 90 ≤ global 50 + debt 40
	// No grants while over the new capacity.
	if got := p.Acquire("a", 1); got != 0 {
		t.Fatalf("grant while in debt: %d", got)
	}
	// Releases pay the debt down; grants resume below capacity.
	p.Release("a", 50)
	checkInv(t, p)
	if got := p.Acquire("a", 10); got != 10 {
		t.Fatalf("grant after debt paid: %d", got)
	}
	checkInv(t, p)
}

func TestPoolRemoveReleasesUsage(t *testing.T) {
	p := NewPool(100)
	mustSet(t, p, "a", 50)
	p.Acquire("a", 30)
	if rel := p.Remove("a"); rel != 30 {
		t.Fatalf("Remove released %d want 30", rel)
	}
	if _, used := p.Global(); used != 0 {
		t.Fatalf("usage after remove = %d", used)
	}
	checkInv(t, p)
}

func TestPoolOverReleaseClamped(t *testing.T) {
	p := NewPool(100)
	mustSet(t, p, "a", 50)
	p.Acquire("a", 10)
	p.Release("a", 1000)
	if u, _ := p.Usage("a"); u != 0 {
		t.Fatalf("usage after over-release = %d", u)
	}
	checkInv(t, p)
}

// TestPoolInvariantStress hammers Acquire/Release against concurrent
// add/revoke/resize and global resizes under -race, checking the
// structural invariants throughout — the issue's headline proof.
func TestPoolInvariantStress(t *testing.T) {
	p := NewPool(1000)
	ids := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"}
	for _, id := range ids {
		mustSet(t, p, id, 100)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Workers: acquire then release with some held overlap.
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			id := ids[w]
			held := 0
			r := uint64(w)*2654435761 + 1
			for i := 0; ; i++ {
				select {
				case <-stop:
					p.Release(id, held)
					return
				default:
				}
				r = r*6364136223846793005 + 1442695040888963407
				n := int(r>>33) % 64
				if r&1 == 0 && n > 0 {
					held += p.Acquire(id, n)
				} else if held > 0 {
					rel := n % (held + 1)
					p.Release(id, rel)
					held -= rel
				}
			}
		}(w)
	}

	// Churn: resize budgets, remove/re-add tenants, resize global.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := uint64(99)
		for {
			select {
			case <-stop:
				return
			default:
			}
			r = r*6364136223846793005 + 1442695040888963407
			id := ids[int(r>>33)%len(ids)]
			switch r % 4 {
			case 0:
				_ = p.SetBudget(id, int(r>>40)%120)
			case 1:
				p.Remove(id)
				_ = p.SetBudget(id, 100)
			case 2:
				// Grow then restore the global (shrinks may be refused
				// while Σ budgets is high; that error is expected).
				_ = p.SetGlobal(1200)
				_ = p.SetGlobal(1000)
			case 3:
				_ = p.SetGlobal(1000)
			}
		}
	}()

	// Checker: structural invariants must hold at every instant.
	deadline := time.After(500 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			checkInv(t, p)
			return
		default:
			if err := p.CheckInvariant(); err != nil {
				close(stop)
				wg.Wait()
				t.Fatal(err)
			}
		}
	}
}
