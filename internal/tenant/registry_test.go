package tenant

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func testFile() File {
	return File{
		GlobalBuffer: 200,
		Tenants: []Spec{
			{ID: "acme", Keys: []string{"k-acme"}, Rate: 100, Burst: 10, Buffer: 120},
			{ID: "bulk", Keys: []string{"k-bulk", "k-bulk-2"}, Rate: 0, Buffer: 60},
		},
	}
}

func TestParseValidation(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // substring of error; "" means ok
	}{
		{"ok", `{"tenants":[{"id":"a","keys":["k"],"buffer":10}]}`, ""},
		{"empty", `{"tenants":[]}`, "no tenants"},
		{"dup id", `{"tenants":[{"id":"a","keys":["k1"]},{"id":"a","keys":["k2"]}]}`, "duplicate id"},
		{"dup key", `{"tenants":[{"id":"a","keys":["k"]},{"id":"b","keys":["k"]}]}`, "claimed by both"},
		{"no keys", `{"tenants":[{"id":"a"}]}`, "no API keys"},
		{"neg", `{"tenants":[{"id":"a","keys":["k"],"rate":-1}]}`, "negative"},
		{"over global", `{"global_buffer":5,"tenants":[{"id":"a","keys":["k"],"buffer":10}]}`, "exceeds global_buffer"},
		{"bad field", `{"tenants":[{"id":"a","keys":["k"],"bufer":10}]}`, "parse registry"},
		{"bad id", `{"tenants":[{"id":"a/b","keys":["k"]}]}`, "whitespace"},
	}
	for _, c := range cases {
		_, err := Parse([]byte(c.in))
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	f, err := Parse([]byte(`{"tenants":[{"id":"a","keys":["k"],"rate":50,"buffer":10},{"id":"b","keys":["k2"],"buffer":30}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if f.GlobalBuffer != 40 {
		t.Fatalf("default global = %d want Σ buffers 40", f.GlobalBuffer)
	}
	if f.Tenants[0].Burst != 50 {
		t.Fatalf("default burst = %v want rate 50", f.Tenants[0].Burst)
	}
}

func TestRegistryAuthorize(t *testing.T) {
	r, err := NewRegistry(testFile())
	if err != nil {
		t.Fatal(err)
	}
	if tn := r.Authorize("k-acme"); tn == nil || tn.ID() != "acme" {
		t.Fatalf("k-acme -> %v", tn)
	}
	if tn := r.Authorize("k-bulk-2"); tn == nil || tn.ID() != "bulk" {
		t.Fatalf("k-bulk-2 -> %v", tn)
	}
	if tn := r.Authorize("nope"); tn != nil {
		t.Fatalf("bad key authorized as %s", tn.ID())
	}
	if r.AuthFailures() != 1 {
		t.Fatalf("authFailures = %d want 1", r.AuthFailures())
	}
}

func TestTokenBucket(t *testing.T) {
	r, err := NewRegistry(testFile())
	if err != nil {
		t.Fatal(err)
	}
	// Anchor the fake clock at real now: tenant buckets stamped
	// lastRefill at construction must not see a negative delta.
	now := time.Now()
	r.SetNow(func() time.Time { return now })
	acme := r.Authorize("k-acme") // rate 100/s, burst 10

	// Bucket starts empty; advance 1s to fill to burst (clamped).
	now = now.Add(time.Second)
	if got := acme.AdmitRate(20); got != 10 {
		t.Fatalf("burst-bounded admit = %d want 10", got)
	}
	if got := acme.AdmitRate(5); got != 0 {
		t.Fatalf("drained bucket admitted %d", got)
	}
	now = now.Add(50 * time.Millisecond) // +5 tokens
	if got := acme.AdmitRate(20); got != 5 {
		t.Fatalf("refill admit = %d want 5", got)
	}

	// Unlimited tenant admits everything.
	bulk := r.Authorize("k-bulk")
	if got := bulk.AdmitRate(1_000_000); got != 1_000_000 {
		t.Fatalf("unlimited admit = %d", got)
	}
}

func TestReloadConservation(t *testing.T) {
	r, err := NewRegistry(testFile())
	if err != nil {
		t.Fatal(err)
	}
	acme := r.Authorize("k-acme")
	bulk := r.Authorize("k-bulk")
	if got := acme.AcquireBuffer(100); got != 100 {
		t.Fatalf("acme acquire: %d", got)
	}
	if got := bulk.AcquireBuffer(50); got != 50 {
		t.Fatalf("bulk acquire: %d", got)
	}
	acme.CountAccepted(100)
	bulk.CountAccepted(50)

	// Reload: rotate acme's key, shrink its budget below usage, revoke
	// bulk entirely, add a new tenant. Global shrinks to 140 < current
	// usage 150 → debt path.
	next := File{
		GlobalBuffer: 140,
		Tenants: []Spec{
			{ID: "acme", Keys: []string{"k-acme-2"}, Rate: 100, Burst: 10, Buffer: 80},
			{ID: "new", Keys: []string{"k-new"}, Buffer: 40},
		},
	}
	if err := r.Apply(next); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if err := r.Pool().CheckInvariant(); err != nil {
		t.Fatal(err)
	}

	// Conservation: usage survived the reload intact.
	if _, used := r.Pool().Global(); used != 150 {
		t.Fatalf("usage after reload = %d want 150", used)
	}
	// Old key dead, new key maps to the SAME tenant object (counters
	// conserved).
	if tn := r.Authorize("k-acme"); tn != nil {
		t.Fatal("rotated key still valid")
	}
	acme2 := r.Authorize("k-acme-2")
	if acme2 != acme {
		t.Fatal("tenant object not preserved across reload")
	}
	if acme2.accepted.Load() != 100 {
		t.Fatalf("accepted counter = %d want 100", acme2.accepted.Load())
	}
	// Revoked bulk: unauthenticated, but still resolvable by id while
	// its 50 items drain.
	if tn := r.Authorize("k-bulk"); tn != nil {
		t.Fatal("revoked key still valid")
	}
	if tn := r.TenantByID("bulk"); tn == nil {
		t.Fatal("revoked tenant with live usage dropped from byID")
	}
	// No grants while over the shrunk global.
	if got := acme2.AcquireBuffer(1); got != 0 {
		t.Fatalf("grant while in reload debt: %d", got)
	}
	// Drain bulk: its release pays debt; a later reload garbage
	// collects the drained revoked tenant.
	bulk.ReleaseBuffer(50)
	if err := r.Pool().CheckInvariant(); err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(next); err != nil {
		t.Fatalf("re-Apply: %v", err)
	}
	if tn := r.TenantByID("bulk"); tn != nil {
		t.Fatal("drained revoked tenant not collected")
	}
	// Budget math after drain: usage 100, global 140 → 40 grantable.
	if got := acme2.AcquireBuffer(100); got != 40 {
		t.Fatalf("post-drain grant = %d want 40", got)
	}
	if r.Reloads() != 2 {
		t.Fatalf("reloads = %d want 2", r.Reloads())
	}
}

func TestReloadInvalidFileRejected(t *testing.T) {
	r, err := NewRegistry(testFile())
	if err != nil {
		t.Fatal(err)
	}
	bad := File{GlobalBuffer: 10, Tenants: []Spec{{ID: "a", Keys: []string{"k"}, Buffer: 20}}}
	if err := r.Apply(bad); err == nil {
		t.Fatal("invalid reload accepted")
	}
	if r.ReloadErrors() == 0 {
		t.Fatal("reloadErrors not counted")
	}
	// Live registry untouched.
	if tn := r.Authorize("k-acme"); tn == nil {
		t.Fatal("original key lost after failed reload")
	}
}

// TestRegistryReloadStress runs admission traffic concurrently with
// hot reloads (add/revoke/resize) under -race, asserting pool
// invariants continuously — migration-churn-shaped registry stress.
func TestRegistryReloadStress(t *testing.T) {
	r, err := NewRegistry(File{
		GlobalBuffer: 800,
		Tenants: []Spec{
			{ID: "t0", Keys: []string{"k0"}, Rate: 1e9, Buffer: 200},
			{ID: "t1", Keys: []string{"k1"}, Rate: 1e9, Buffer: 200},
			{ID: "t2", Keys: []string{"k2"}, Rate: 1e9, Buffer: 200},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for i, key := range []string{"k0", "k1", "k2"} {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			held := 0
			var tn *Tenant
			rnd := uint64(i + 1)
			for {
				select {
				case <-stop:
					if tn != nil {
						tn.ReleaseBuffer(held)
					}
					return
				default:
				}
				// Re-authorize each round: the key may be revoked and
				// restored by the reloader. A drained revoked tenant
				// is collected, so after a revocation the object may
				// legitimately be a fresh one — drop our claim on the
				// old one (release is clamped server-side).
				got := r.Authorize(key)
				if got == nil {
					if tn != nil {
						tn.ReleaseBuffer(held)
						tn, held = nil, 0
					}
					continue
				}
				if tn != nil && got != tn {
					held = 0 // old usage was released by Remove
				}
				tn = got
				rnd = rnd*6364136223846793005 + 1
				n := int(rnd>>33) % 32
				if rnd&1 == 0 {
					if adm := tn.AdmitRate(n); adm > 0 {
						held += tn.AcquireBuffer(adm)
					}
				} else if held > 0 {
					rel := n % (held + 1)
					tn.ReleaseBuffer(rel)
					held -= rel
				}
			}
		}(i, key)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		files := []File{
			{GlobalBuffer: 800, Tenants: []Spec{
				{ID: "t0", Keys: []string{"k0"}, Rate: 1e9, Buffer: 300},
				{ID: "t1", Keys: []string{"k1"}, Rate: 1e9, Buffer: 100},
				{ID: "t2", Keys: []string{"k2"}, Rate: 1e9, Buffer: 200},
			}},
			{GlobalBuffer: 700, Tenants: []Spec{
				{ID: "t0", Keys: []string{"k0"}, Rate: 1e9, Buffer: 200},
				{ID: "t2", Keys: []string{"k2"}, Rate: 1e9, Buffer: 300},
				{ID: "t3", Keys: []string{"k3"}, Rate: 1e9, Buffer: 100},
			}},
			{GlobalBuffer: 800, Tenants: []Spec{
				{ID: "t0", Keys: []string{"k0"}, Rate: 1e9, Buffer: 200},
				{ID: "t1", Keys: []string{"k1"}, Rate: 1e9, Buffer: 200},
				{ID: "t2", Keys: []string{"k2"}, Rate: 1e9, Buffer: 200},
			}},
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := r.Apply(files[i%len(files)]); err != nil {
				t.Errorf("Apply: %v", err)
				return
			}
		}
	}()

	deadline := time.After(500 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(stop)
			wg.Wait()
			if err := r.Pool().CheckInvariant(); err != nil {
				t.Fatal(err)
			}
			return
		default:
			if err := r.Pool().CheckInvariant(); err != nil {
				close(stop)
				wg.Wait()
				t.Fatal(err)
			}
		}
	}
}
