package tenant

import (
	"fmt"
	"sync"
	"time"
)

// lendTau is how long an idle tenant's recent peak usage keeps
// shielding its budget from being lent out. A hot borrower therefore
// loses access to a waking lender's budget within ~lendTau, which is
// comfortably inside the runtime's latency bounds (tens of ms) only in
// aggregate — the guarantee is that NEW borrows stop instantly once the
// lender's usage rises; the decay only governs how fast fully-idle
// budget becomes lendable again.
const lendTau = 2 * time.Second

// Pool is the elastic per-tenant buffer-quota pool. It sits above the
// per-pair pool: tenants draw buffered-item grants from a shared
// global capacity G, each holding a budget b_t with Σ b_t ≤ G.
//
// Elasticity: a tenant may use beyond its budget by borrowing, but a
// grant is never allowed to push Σ usage past G, and borrowing is
// additionally capped by the unreserved slack (G − Σ b_t) plus the
// lendable share of other tenants' budgets (budget minus a decaying
// high-water mark of their own usage). Active tenants therefore always
// find their budget available: usage ≤ budget is granted whenever
// physical space exists, and physical space is guaranteed unless
// *borrowers* are holding it — which the lendable cap prevents from
// exceeding what idle tenants weren't using.
//
// Invariants (CheckInvariant, proven under -race):
//
//	Σ budgets ≤ global
//	Σ usage  == totalUsage ≤ global + debt
//	usage_t, budgets_t ≥ 0
//
// debt is nonzero only transiently after a reload shrinks G below the
// items already admitted; it is paid down by releases and no new
// grants are issued while usage exceeds the new G.
type Pool struct {
	mu sync.Mutex

	global int // G: shared capacity
	debt   int // transient over-commit allowance after a global shrink

	budgets map[string]int // b_t, Σ ≤ global
	usage   map[string]int // u_t ≥ 0
	peak    map[string]int // decaying high-water mark of u_t
	peakAt  map[string]time.Time

	totalBudget int
	totalUsage  int

	reclaimDenied int64 // borrow attempts refused to protect lenders

	now func() time.Time // injectable for tests/virtual clocks
}

// NewPool creates a pool with global capacity g.
func NewPool(g int) *Pool {
	if g < 0 {
		g = 0
	}
	return &Pool{
		global:  g,
		budgets: make(map[string]int),
		usage:   make(map[string]int),
		peak:    make(map[string]int),
		peakAt:  make(map[string]time.Time),
		now:     time.Now,
	}
}

// SetNow installs a clock for tests; nil restores time.Now.
func (p *Pool) SetNow(now func() time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if now == nil {
		now = time.Now
	}
	p.now = now
}

// SetBudget creates tenant id or resizes its budget. It fails if the
// new Σ budgets would exceed the global capacity. Usage above a shrunk
// budget is not evicted; the tenant simply counts as a borrower until
// it drains.
func (p *Pool) SetBudget(id string, b int) error {
	if b < 0 {
		return fmt.Errorf("tenant: negative budget %d for %q", b, id)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	next := p.totalBudget - p.budgets[id] + b
	if next > p.global {
		return fmt.Errorf("tenant: budget %d for %q would push Σ budgets to %d > global %d", b, id, next, p.global)
	}
	p.totalBudget = next
	p.budgets[id] = b
	if _, ok := p.usage[id]; !ok {
		p.usage[id] = 0
		p.peak[id] = 0
		p.peakAt[id] = p.now()
	}
	return nil
}

// Remove drops tenant id from the pool, releasing whatever it held.
// Returns the number of items released.
func (p *Pool) Remove(id string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.usage[id]
	p.totalUsage -= u
	p.totalBudget -= p.budgets[id]
	delete(p.budgets, id)
	delete(p.usage, id)
	delete(p.peak, id)
	delete(p.peakAt, id)
	p.payDebtLocked()
	return u
}

// SetGlobal resizes the shared capacity. If items already admitted
// exceed the new capacity the excess becomes debt: no new grants are
// issued until releases pay it down, but nothing already buffered is
// evicted. Fails if Σ budgets would exceed the new capacity — shrink
// budgets first (Apply on the Registry orders this correctly).
func (p *Pool) SetGlobal(g int) error {
	if g < 0 {
		return fmt.Errorf("tenant: negative global capacity %d", g)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.totalBudget > g {
		return fmt.Errorf("tenant: Σ budgets %d exceeds new global %d", p.totalBudget, g)
	}
	p.global = g
	p.debt = 0
	if p.totalUsage > g {
		p.debt = p.totalUsage - g
	}
	return nil
}

// Acquire grants tenant id up to n buffered-item slots and returns the
// number granted (0..n). Grants within the tenant's budget are limited
// only by physical slack; grants beyond it additionally require
// borrowable headroom. Unknown tenants hold budget 0 and may only
// borrow.
func (p *Pool) Acquire(id string, n int) int {
	if n <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()

	slack := p.global - p.debt - p.totalUsage
	if slack <= 0 {
		return 0
	}

	u := p.usage[id]
	b := p.budgets[id]

	grant := 0
	// Within-budget portion: guaranteed whenever physical space exists.
	if u < b {
		grant = b - u
		if grant > n {
			grant = n
		}
		if grant > slack {
			grant = slack
		}
	}

	// Borrowed portion: limited by unreserved + lendable headroom.
	want := n - grant
	if want > 0 && slack-grant > 0 {
		head := p.borrowHeadroomLocked(id)
		avail := head - p.totalBorrowedLocked(id, grant)
		if avail > want {
			avail = want
		}
		if avail > slack-grant {
			avail = slack - grant
		}
		if avail > 0 {
			grant += avail
		} else if head <= 0 {
			p.reclaimDenied++
		}
	}

	if grant > 0 {
		p.usage[id] = u + grant
		p.totalUsage += grant
		p.bumpPeakLocked(id)
	}
	return grant
}

// totalBorrowedLocked sums usage beyond budget across all tenants,
// counting an extra pending grant for tenant id.
func (p *Pool) totalBorrowedLocked(id string, pending int) int {
	tot := 0
	for t, u := range p.usage {
		if t == id {
			u += pending
		}
		if b := p.budgets[t]; u > b {
			tot += u - b
		}
	}
	return tot
}

// borrowHeadroomLocked is the total amount tenants other than id are
// willing to have outstanding as borrows: the unreserved global slack
// plus each other tenant's lendable budget (budget minus the decayed
// high-water mark of its own usage). A tenant never lends to itself —
// its own budget is already granted directly.
func (p *Pool) borrowHeadroomLocked(id string) int {
	head := p.global - p.debt - p.totalBudget // unreserved slack
	now := p.now()
	for t, b := range p.budgets {
		if t == id || b == 0 {
			continue
		}
		held := p.decayedPeakLocked(t, now)
		if u := p.usage[t]; u > held {
			held = u
		}
		if b > held {
			head += b - held
		}
	}
	return head
}

// decayedPeakLocked returns tenant t's high-water usage mark decayed
// linearly toward its current usage over lendTau.
func (p *Pool) decayedPeakLocked(t string, now time.Time) int {
	pk := p.peak[t]
	u := p.usage[t]
	if pk <= u {
		return u
	}
	dt := now.Sub(p.peakAt[t])
	if dt >= lendTau {
		return u
	}
	if dt < 0 {
		dt = 0
	}
	rem := pk - int(float64(pk-u)*float64(dt)/float64(lendTau))
	if rem < u {
		rem = u
	}
	return rem
}

func (p *Pool) bumpPeakLocked(id string) {
	now := p.now()
	u := p.usage[id]
	if dp := p.decayedPeakLocked(id, now); dp > u {
		// keep the decayed value as the new anchor so the mark keeps
		// decaying monotonically instead of resetting its clock
		p.peak[id] = dp
	} else {
		p.peak[id] = u
	}
	p.peakAt[id] = now
}

// Release returns n buffered-item slots from tenant id. Over-release
// is clamped (items released by a detach race are counted once).
func (p *Pool) Release(id string, n int) {
	if n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.usage[id]
	if n > u {
		n = u
	}
	if n <= 0 {
		return
	}
	p.usage[id] = u - n
	p.totalUsage -= n
	p.bumpPeakLocked(id)
	p.payDebtLocked()
}

func (p *Pool) payDebtLocked() {
	if p.debt > 0 && p.totalUsage < p.global+p.debt {
		over := p.totalUsage - p.global
		if over < 0 {
			over = 0
		}
		p.debt = over
	}
}

// Usage returns tenant id's current buffered-item usage and budget.
func (p *Pool) Usage(id string) (usage, budget int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.usage[id], p.budgets[id]
}

// Global returns the shared capacity and total usage.
func (p *Pool) Global() (g, used int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.global, p.totalUsage
}

// ReclaimDenied counts borrow attempts refused because idle-tenant
// budget had been reclaimed (fair-shedding pressure on borrowers).
func (p *Pool) ReclaimDenied() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reclaimDenied
}

// CheckInvariant verifies the pool's structural invariants; it returns
// an error naming the first violation found.
func (p *Pool) CheckInvariant() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	sb, su := 0, 0
	for id, b := range p.budgets {
		if b < 0 {
			return fmt.Errorf("tenant: budget[%s] = %d < 0", id, b)
		}
		sb += b
	}
	for id, u := range p.usage {
		if u < 0 {
			return fmt.Errorf("tenant: usage[%s] = %d < 0", id, u)
		}
		su += u
	}
	if sb != p.totalBudget {
		return fmt.Errorf("tenant: Σ budgets %d != totalBudget %d", sb, p.totalBudget)
	}
	if su != p.totalUsage {
		return fmt.Errorf("tenant: Σ usage %d != totalUsage %d", su, p.totalUsage)
	}
	if sb > p.global {
		return fmt.Errorf("tenant: Σ budgets %d > global %d", sb, p.global)
	}
	if p.debt < 0 {
		return fmt.Errorf("tenant: debt %d < 0", p.debt)
	}
	if su > p.global+p.debt {
		return fmt.Errorf("tenant: Σ usage %d > global %d + debt %d", su, p.global, p.debt)
	}
	return nil
}
