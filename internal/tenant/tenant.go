// Package tenant is the multi-tenant admission layer above the PBPL
// runtime: an API-key registry mapping callers to tenants, per-tenant
// token-bucket rate budgets, and an elastic per-tenant buffer-quota
// pool layered over the per-pair pool (internal/buffer) — the same
// Σ budgets ≤ global invariant, one level up.
//
// The paper's machinery trusts a fixed set of producer/consumer pairs;
// production traffic means tenants, and tenants mean noisy neighbors.
// The design mirrors the per-pair pool's elastic-walls idea (§V-C,
// Fig. 8) on the tenant axis:
//
//   - Every tenant holds a buffer budget; Σ budgets ≤ global, enforced
//     at load and on every reload.
//   - An idle tenant's unused budget is lendable: a hot tenant may
//     borrow past its own budget, but only from the unreserved global
//     slack plus the idle share of other tenants' budgets.
//   - Lending is reclaimed on demand: a tenant's own recent usage
//     (a decaying high-water mark) shields its budget from being lent,
//     so the moment a lender becomes active new borrows stop and the
//     borrower's over-budget items drain away within the latency bound.
//
// Rate budgets are strict per tenant (no lending): they are the
// fair-shedding front line, guaranteeing one hot tenant saturating its
// rate cannot starve another tenant's admission.
package tenant

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Spec is one tenant's configuration entry in the registry file.
type Spec struct {
	// ID names the tenant; unique, non-empty, and stable across
	// reloads (counters and buffer usage survive by id).
	ID string `json:"id"`
	// Keys are the API keys that authenticate as this tenant. A key
	// belongs to exactly one tenant.
	Keys []string `json:"keys"`
	// Rate is the tenant's admission budget in items/s (token bucket).
	// 0 means unlimited.
	Rate float64 `json:"rate,omitempty"`
	// Burst is the token-bucket depth in items. 0 defaults to one
	// second of Rate (min 1).
	Burst float64 `json:"burst,omitempty"`
	// Buffer is the tenant's guaranteed buffered-item budget drawn
	// from the global pool. 0 means no guarantee: the tenant admits
	// only by borrowing idle slack.
	Buffer int `json:"buffer,omitempty"`
}

// File is the registry file format (JSON):
//
//	{
//	  "global_buffer": 8192,
//	  "tenants": [
//	    {"id": "acme", "keys": ["k-acme-1"], "rate": 5000, "buffer": 2048},
//	    {"id": "bulk", "keys": ["k-bulk-1"], "rate": 800,  "buffer": 1024}
//	  ]
//	}
type File struct {
	// GlobalBuffer is the global buffered-item capacity tenants share.
	// 0 defaults to Σ tenant buffers (no unreserved slack).
	GlobalBuffer int    `json:"global_buffer,omitempty"`
	Tenants      []Spec `json:"tenants"`
}

// Parse decodes and validates a registry file: unique non-empty ids
// and keys, non-negative budgets, and Σ tenant buffers ≤ global.
func Parse(b []byte) (File, error) {
	var f File
	dec := json.NewDecoder(strings.NewReader(string(b)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return File{}, fmt.Errorf("tenant: parse registry: %w", err)
	}
	if err := f.validate(); err != nil {
		return File{}, err
	}
	return f, nil
}

// Load reads and parses a registry file from disk.
func Load(path string) (File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return File{}, fmt.Errorf("tenant: %w", err)
	}
	return Parse(b)
}

func (f *File) validate() error {
	if len(f.Tenants) == 0 {
		return fmt.Errorf("tenant: registry has no tenants")
	}
	ids := make(map[string]struct{}, len(f.Tenants))
	keys := make(map[string]string)
	sumBuffer := 0
	for i := range f.Tenants {
		t := &f.Tenants[i]
		if t.ID == "" {
			return fmt.Errorf("tenant: entry %d has empty id", i)
		}
		if strings.ContainsAny(t.ID, " \t\r\n/") {
			return fmt.Errorf("tenant: id %q contains whitespace or '/'", t.ID)
		}
		if _, dup := ids[t.ID]; dup {
			return fmt.Errorf("tenant: duplicate id %q", t.ID)
		}
		ids[t.ID] = struct{}{}
		if len(t.Keys) == 0 {
			return fmt.Errorf("tenant: %q has no API keys", t.ID)
		}
		for _, k := range t.Keys {
			if k == "" {
				return fmt.Errorf("tenant: %q has an empty API key", t.ID)
			}
			if owner, dup := keys[k]; dup {
				return fmt.Errorf("tenant: key %q claimed by both %q and %q", k, owner, t.ID)
			}
			keys[k] = t.ID
		}
		if t.Rate < 0 || t.Burst < 0 || t.Buffer < 0 {
			return fmt.Errorf("tenant: %q has a negative budget", t.ID)
		}
		if t.Burst == 0 && t.Rate > 0 {
			t.Burst = t.Rate
			if t.Burst < 1 {
				t.Burst = 1
			}
		}
		sumBuffer += t.Buffer
	}
	if f.GlobalBuffer == 0 {
		f.GlobalBuffer = sumBuffer
	}
	if sumBuffer > f.GlobalBuffer {
		return fmt.Errorf("tenant: Σ tenant buffers %d exceeds global_buffer %d", sumBuffer, f.GlobalBuffer)
	}
	return nil
}
