package tenant

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Tenant is one live tenant: its identity, token-bucket rate budget,
// and admission counters. The object survives registry reloads (keys
// and budgets change in place) so buffer usage and counters are
// conserved across SIGHUP.
type Tenant struct {
	id   string
	name string

	mu         sync.Mutex
	rate       float64 // items/s; 0 = unlimited
	burst      float64 // bucket depth
	tokens     float64
	lastRefill time.Time

	accepted    atomic.Int64
	shedRate    atomic.Int64
	shedBuffer  atomic.Int64
	quarantined atomic.Int64
	reg         *Registry
}

// ID returns the tenant's stable identifier.
func (t *Tenant) ID() string { return t.id }

// AdmitRate charges up to n items against the tenant's rate budget and
// returns how many were admitted. Rate budgets are strict (no lending):
// this is the fair-shedding front line.
func (t *Tenant) AdmitRate(n int) int {
	if n <= 0 {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rate <= 0 {
		return n // unlimited
	}
	now := t.reg.now()
	if dt := now.Sub(t.lastRefill).Seconds(); dt > 0 {
		t.tokens += dt * t.rate
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
	}
	t.lastRefill = now
	adm := int(t.tokens)
	if adm > n {
		adm = n
	}
	if adm > 0 {
		t.tokens -= float64(adm)
	}
	return adm
}

// AcquireBuffer grants the tenant up to n buffered-item slots from the
// elastic pool and returns the number granted.
func (t *Tenant) AcquireBuffer(n int) int {
	return t.reg.pool.Acquire(t.id, n)
}

// ReleaseBuffer returns n buffered-item slots to the pool.
func (t *Tenant) ReleaseBuffer(n int) {
	t.reg.pool.Release(t.id, n)
}

// CountAccepted, CountShedRate, CountShedBuffer, CountQuarantined
// record admission outcomes for metrics/statusz.
func (t *Tenant) CountAccepted(n int)    { t.accepted.Add(int64(n)) }
func (t *Tenant) CountShedRate(n int)    { t.shedRate.Add(int64(n)) }
func (t *Tenant) CountShedBuffer(n int)  { t.shedBuffer.Add(int64(n)) }
func (t *Tenant) CountQuarantined(n int) { t.quarantined.Add(int64(n)) }

// Registry maps API keys to tenants and owns the elastic buffer pool.
// All methods are safe for concurrent use; Apply (hot reload) may run
// concurrently with Authorize/admission on the hot path.
type Registry struct {
	pool *Pool

	mu    sync.RWMutex
	byKey map[string]*Tenant
	byID  map[string]*Tenant

	authFailures atomic.Int64
	reloads      atomic.Int64
	reloadErrors atomic.Int64

	nowMu sync.RWMutex
	nowFn func() time.Time
}

// NewRegistry builds a registry from a parsed file.
func NewRegistry(f File) (*Registry, error) {
	r := &Registry{
		pool:  NewPool(f.GlobalBuffer),
		byKey: make(map[string]*Tenant),
		byID:  make(map[string]*Tenant),
		nowFn: time.Now,
	}
	if err := r.Apply(f); err != nil {
		return nil, err
	}
	r.reloads.Store(0) // initial load is not a reload
	return r, nil
}

// SetNow installs a clock for tests; nil restores time.Now. The clock
// drives both token buckets and the pool's lending decay.
func (r *Registry) SetNow(now func() time.Time) {
	r.nowMu.Lock()
	if now == nil {
		now = time.Now
	}
	r.nowFn = now
	r.nowMu.Unlock()
	r.pool.SetNow(now)
}

func (r *Registry) now() time.Time {
	r.nowMu.RLock()
	f := r.nowFn
	r.nowMu.RUnlock()
	return f()
}

// Pool exposes the elastic buffer pool (tests, invariant checks).
func (r *Registry) Pool() *Pool { return r.pool }

// Authorize resolves an API key to its tenant. Unknown keys count as
// auth failures and return nil.
func (r *Registry) Authorize(key string) *Tenant {
	r.mu.RLock()
	t := r.byKey[key]
	r.mu.RUnlock()
	if t == nil {
		r.authFailures.Add(1)
	}
	return t
}

// TenantByID resolves a tenant id (cluster forwarding carries ids, not
// keys). Revoked tenants remain resolvable by id until their buffered
// items drain, so in-flight attribution stays conserved.
func (r *Registry) TenantByID(id string) *Tenant {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byID[id]
}

// AuthFailures returns the count of rejected API keys.
func (r *Registry) AuthFailures() int64 { return r.authFailures.Load() }

// Reloads and ReloadErrors count Apply outcomes since start.
func (r *Registry) Reloads() int64      { return r.reloads.Load() }
func (r *Registry) ReloadErrors() int64 { return r.reloadErrors.Load() }

// CountReloadError records a failed reload attempt (e.g. unreadable or
// invalid file on SIGHUP) without touching the live registry.
func (r *Registry) CountReloadError() { r.reloadErrors.Add(1) }

// Apply installs a new registry file over the live registry: keys are
// re-pointed, budgets resized, new tenants created, and revoked
// tenants lose their keys immediately but keep their id (and buffered
// items) until they drain. Tenant objects are preserved by id, so
// counters, token buckets (clamped to the new burst), and pool usage
// are conserved — the reload conservation property.
func (r *Registry) Apply(f File) error {
	if err := f.validate(); err != nil {
		r.reloadErrors.Add(1)
		return err
	}

	r.mu.Lock()
	defer r.mu.Unlock()

	// Order matters when the global shrinks: SetGlobal refuses while
	// Σ budgets exceeds it, so zero removed/shrunk budgets first, then
	// resize the global, then grow budgets (Σ ≤ global re-validated).
	keep := make(map[string]Spec, len(f.Tenants))
	for _, s := range f.Tenants {
		keep[s.ID] = s
	}
	for id := range r.byID {
		if _, ok := keep[id]; !ok {
			// Revoked: keep the Tenant resolvable by id while its
			// buffered items drain, but drop its budget to 0 so its
			// reservation returns to the pool.
			if err := r.pool.SetBudget(id, 0); err != nil {
				r.reloadErrors.Add(1)
				return err
			}
		} else if keep[id].Buffer < r.currentBudget(id) {
			if err := r.pool.SetBudget(id, keep[id].Buffer); err != nil {
				r.reloadErrors.Add(1)
				return err
			}
		}
	}
	if err := r.pool.SetGlobal(f.GlobalBuffer); err != nil {
		r.reloadErrors.Add(1)
		return err
	}

	byKey := make(map[string]*Tenant, len(f.Tenants))
	for _, s := range f.Tenants {
		t := r.byID[s.ID]
		created := t == nil
		if created {
			t = &Tenant{id: s.ID, reg: r, lastRefill: r.nowLocked()}
			r.byID[s.ID] = t
		}
		if err := r.pool.SetBudget(s.ID, s.Buffer); err != nil {
			r.reloadErrors.Add(1)
			return err
		}
		t.mu.Lock()
		t.rate = s.Rate
		t.burst = s.Burst
		if created {
			// A fresh bucket starts full: a new tenant may spend its
			// burst immediately rather than accruing from zero.
			t.tokens = t.burst
		}
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
		t.mu.Unlock()
		for _, k := range s.Keys {
			byKey[k] = t
		}
	}
	r.byKey = byKey

	// Drop fully-drained revoked tenants from byID (and the pool).
	for id := range r.byID {
		if _, ok := keep[id]; ok {
			continue
		}
		if u, _ := r.pool.Usage(id); u == 0 {
			r.pool.Remove(id)
			delete(r.byID, id)
		}
	}

	r.reloads.Add(1)
	return nil
}

func (r *Registry) currentBudget(id string) int {
	_, b := r.pool.Usage(id)
	return b
}

// nowLocked reads the clock without taking nowMu write-side; callers
// hold r.mu which is fine — nowMu is independent.
func (r *Registry) nowLocked() time.Time { return r.now() }

// TenantSnapshot is one row of the /statusz tenant table.
type TenantSnapshot struct {
	ID          string  `json:"id"`
	Rate        float64 `json:"rate"`
	BufferUsage int     `json:"buffer_usage"`
	Budget      int     `json:"buffer_budget"`
	Borrowed    int     `json:"borrowed"`
	Accepted    int64   `json:"accepted"`
	ShedRate    int64   `json:"shed_rate"`
	ShedBuffer  int64   `json:"shed_buffer"`
	Quarantined int64   `json:"quarantined"`
	Revoked     bool    `json:"revoked,omitempty"`
}

// RegistrySnapshot is the /statusz tenant section.
type RegistrySnapshot struct {
	GlobalBuffer  int              `json:"global_buffer"`
	GlobalUsage   int              `json:"global_usage"`
	AuthFailures  int64            `json:"auth_failures"`
	Reloads       int64            `json:"reloads"`
	ReloadErrors  int64            `json:"reload_errors"`
	ReclaimDenied int64            `json:"reclaim_denied"`
	Tenants       []TenantSnapshot `json:"tenants"`
}

// Snapshot captures the registry state for /statusz and /metrics.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	ids := make([]string, 0, len(r.byID))
	tens := make(map[string]*Tenant, len(r.byID))
	live := make(map[string]bool, len(r.byKey))
	for id, t := range r.byID {
		ids = append(ids, id)
		tens[id] = t
	}
	for _, t := range r.byKey {
		live[t.id] = true
	}
	r.mu.RUnlock()
	sort.Strings(ids)

	g, used := r.pool.Global()
	snap := RegistrySnapshot{
		GlobalBuffer:  g,
		GlobalUsage:   used,
		AuthFailures:  r.authFailures.Load(),
		Reloads:       r.reloads.Load(),
		ReloadErrors:  r.reloadErrors.Load(),
		ReclaimDenied: r.pool.ReclaimDenied(),
	}
	for _, id := range ids {
		t := tens[id]
		u, b := r.pool.Usage(id)
		bor := u - b
		if bor < 0 {
			bor = 0
		}
		t.mu.Lock()
		rate := t.rate
		t.mu.Unlock()
		snap.Tenants = append(snap.Tenants, TenantSnapshot{
			ID:          id,
			Rate:        rate,
			BufferUsage: u,
			Budget:      b,
			Borrowed:    bor,
			Accepted:    t.accepted.Load(),
			ShedRate:    t.shedRate.Load(),
			ShedBuffer:  t.shedBuffer.Load(),
			Quarantined: t.quarantined.Load(),
			Revoked:     !live[id],
		})
	}
	return snap
}
