package repro

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestHandoffReturnsBufferedFIFO: items still buffered when Handoff runs
// come back in Put order, are counted as HandedOff (not ItemsOut or
// Dropped), and the conservation ledger balances.
func TestHandoffReturnsBufferedFIFO(t *testing.T) {
	// A slot/latency far beyond the test's lifetime keeps the manager
	// from draining before the hand-off.
	rt, err := New(WithSlotSize(time.Second), WithMaxLatency(time.Minute), WithBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	p, err := Open(rt, Batch(func([]int) { t.Error("handler must not run during handoff") }))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	for i := 0; i < n; i++ {
		if err := p.Put(i); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	items, err := p.Handoff()
	if err != nil {
		t.Fatalf("Handoff: %v", err)
	}
	if len(items) != n {
		t.Fatalf("handoff returned %d items, want %d", len(items), n)
	}
	for i, v := range items {
		if v != i {
			t.Fatalf("items[%d] = %d, FIFO order violated", i, v)
		}
	}
	st := p.Stats()
	if st.HandedOff != n || st.ItemsOut != 0 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want HandedOff=%d ItemsOut=0 Dropped=0", st, n)
	}
	if st.ItemsIn != st.ItemsOut+st.Dropped+st.HandedOff {
		t.Fatalf("conservation broken: %+v", st)
	}
	if rt.Stats().HandedOff != n {
		t.Fatalf("runtime HandedOff = %d, want %d", rt.Stats().HandedOff, n)
	}
	if err := p.Put(99); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Handoff = %v, want ErrClosed", err)
	}
	if _, err := p.Handoff(); !errors.Is(err, ErrClosed) {
		t.Fatalf("second Handoff = %v, want ErrClosed", err)
	}
}

// TestHandoffShipsRetainedBatchFirst: a failed batch retained for
// redelivery travels at the head of the handed-off items — it is older
// than anything still buffered.
func TestHandoffShipsRetainedBatchFirst(t *testing.T) {
	rt, err := New(WithSlotSize(5*time.Millisecond), WithMaxLatency(20*time.Millisecond), WithBuffer(64))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	fail := make(chan struct{})
	failed := make(chan struct{}, 8)
	p, err := Open(rt, Func(func(_ context.Context, batch []int) error {
		select {
		case <-fail:
			return nil
		default:
			select {
			case failed <- struct{}{}:
			default:
			}
			return errors.New("injected")
		}
	}),

		Breaker(0), Redelivery(100))

	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := p.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the handler has failed at least once, so the first
	// batch is retained for redelivery.
	select {
	case <-failed:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never invoked")
	}
	for i := 4; i < 8; i++ {
		if err := p.Put(i); err != nil {
			t.Fatal(err)
		}
	}
	items, err := p.Handoff()
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.ItemsIn != st.ItemsOut+st.Dropped+st.HandedOff {
		t.Fatalf("conservation broken: %+v", st)
	}
	if uint64(len(items)) != st.HandedOff {
		t.Fatalf("returned %d items but HandedOff=%d", len(items), st.HandedOff)
	}
	// Whatever was extracted must be in global FIFO order: the retained
	// batch holds the oldest items, the queue the newest.
	for i := 1; i < len(items); i++ {
		if items[i-1] >= items[i] {
			t.Fatalf("handed-off items out of order: %v", items)
		}
	}
	close(fail)
}
