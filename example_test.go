package repro_test

import (
	"fmt"
	"time"

	"repro"
)

// The canonical setup: one runtime, one pair, batched consumption.
func Example() {
	rt, err := repro.New(
		repro.WithSlotSize(10*time.Millisecond),
		repro.WithMaxLatency(50*time.Millisecond),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	done := make(chan int, 1)
	pair, err := repro.Open(rt, repro.Batch(func(batch []string) {
		select {
		case done <- len(batch):
		default:
		}
	}))

	if err != nil {
		panic(err)
	}
	defer pair.Close()

	for i := 0; i < 3; i++ {
		if err := pair.Put(fmt.Sprintf("job-%d", i)); err != nil {
			panic(err)
		}
	}
	fmt.Printf("first batch: %d items\n", <-done)
	// Output: first batch: 3 items
}

// Pairs can carry any payload type and mix latency classes on one
// runtime: a tight-latency pair for user-facing work next to a relaxed
// one for background batching.
func ExampleOpen() {
	rt, err := repro.New(repro.WithSlotSize(5 * time.Millisecond))
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	type audit struct{ user string }
	urgent, err := repro.Open(rt, repro.Batch(func(batch []audit) {}),
		repro.MaxLatency(20*time.Millisecond))

	if err != nil {
		panic(err)
	}
	relaxed, err := repro.Open(rt, repro.Batch(func(batch []audit) {}),
		repro.MaxLatency(500*time.Millisecond))

	if err != nil {
		panic(err)
	}
	defer urgent.Close()
	defer relaxed.Close()

	fmt.Println(urgent.Put(audit{"alice"}), relaxed.Put(audit{"bob"}))
	// Output: <nil> <nil>
}

// Put never blocks; PutWait trades bounded blocking for certainty.
func ExamplePair_PutWait() {
	rt, err := repro.New(
		repro.WithSlotSize(5*time.Millisecond),
		repro.WithMaxLatency(25*time.Millisecond),
		repro.WithBuffer(2), repro.WithMinQuota(2),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	pair, err := repro.Open(rt, repro.Batch(func(batch []int) {}))
	if err != nil {
		panic(err)
	}
	defer pair.Close()

	accepted := 0
	for i := 0; i < 10; i++ {
		if err := pair.PutWait(i, time.Second); err == nil {
			accepted++
		}
	}
	fmt.Println(accepted)
	// Output: 10
}

// Stats exposes the wakeup economics that motivate the design.
func ExampleRuntime_Stats() {
	rt, err := repro.New(repro.WithSlotSize(5 * time.Millisecond))
	if err != nil {
		panic(err)
	}
	pair, err := repro.Open(rt, repro.Batch(func(batch []int) {}))
	if err != nil {
		panic(err)
	}
	for i := 0; i < 100; i++ {
		pair.PutWait(i, time.Second)
	}
	pair.Close()
	rt.Close()

	st := rt.Stats()
	fmt.Println(st.ItemsOut == 100, st.TimerWakes+st.ForcedWakes+st.Invocations > 0)
	// Output: true true
}
