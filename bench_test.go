package repro

// Benchmarks regenerating every table and figure of the paper's
// evaluation, one testing.B benchmark per artifact (DESIGN.md §4).
// Each iteration performs a full (scaled-down) experiment; the custom
// metrics reported per iteration are the figure's headline numbers, so
//
//	go test -bench=Fig -benchmem
//
// prints the reproduced results alongside the usual ns/op. The
// full-scale tables (paper-length runs, 3 replicates, confidence
// intervals) come from cmd/pcbench; these benches use the Quick
// configuration so the suite stays minutes, not hours.

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/impls"
	"repro/internal/simtime"
)

func benchCfg() exp.Config {
	// 5 virtual seconds: long enough that cold-start transients do not
	// distort the figures, short enough for bench iterations.
	return exp.Config{
		Duration:   5 * simtime.Second,
		Replicates: 1,
		BaseSeed:   1998,
	}
}

// BenchmarkFig3 regenerates Figure 3: wakeups/s vs usage for the seven
// single-pair implementations.
func BenchmarkFig3(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig3(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("mutex", exp.KeyWakeups), "mutex-wk/s")
	b.ReportMetric(last.MustValue("spbp", exp.KeyWakeups), "spbp-wk/s")
	b.ReportMetric(last.MustValue("bw", exp.KeyUsage), "bw-usage-ms/s")
}

// BenchmarkFig4 regenerates Figure 4: power for the seven
// implementations.
func BenchmarkFig4(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig4(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("bw", exp.KeyPower), "bw-mW")
	b.ReportMetric(last.MustValue("mutex", exp.KeyPower), "mutex-mW")
	b.ReportMetric(last.MustValue("spbp", exp.KeyPower), "spbp-mW")
}

// BenchmarkCorrelations regenerates the §III-C correlation analysis.
func BenchmarkCorrelations(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Correlations(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("idle-based-5", "r"), "pearson-r")
}

// BenchmarkFig9 regenerates Figure 9: the 5-consumer comparison.
func BenchmarkFig9(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig9(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("mutex", exp.KeyPower), "mutex-mW")
	b.ReportMetric(last.MustValue("bp", exp.KeyPower), "bp-mW")
	b.ReportMetric(last.MustValue(core.Name, exp.KeyPower), "pbpl-mW")
	b.ReportMetric(last.MustValue(core.Name, exp.KeyWakeups), "pbpl-wk/s")
}

// BenchmarkFig10 regenerates Figure 10: the consumer-count sweep.
func BenchmarkFig10(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig10(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue(core.Name+" M=2", exp.KeyPower), "pbpl-M2-mW")
	b.ReportMetric(last.MustValue(core.Name+" M=10", exp.KeyPower), "pbpl-M10-mW")
	b.ReportMetric(last.MustValue("mutex M=10", exp.KeyPower), "mutex-M10-mW")
}

// BenchmarkFig11 regenerates Figure 11: the buffer-size sweep.
func BenchmarkFig11(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Fig11(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("bp B=100", exp.KeyWakeups), "bp-B100-wk/s")
	b.ReportMetric(last.MustValue(core.Name+" B=100", exp.KeyWakeups), "pbpl-B100-wk/s")
}

// BenchmarkWakeupAccounting regenerates the §VI-C scheduled-vs-overflow
// counters (paper: 5160+1626 vs 9290; 82.5% conversion).
func BenchmarkWakeupAccounting(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.WakeupAccounting(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue(core.Name, exp.KeyScheduled), "pbpl-sched")
	b.ReportMetric(last.MustValue(core.Name, exp.KeyOverflows), "pbpl-ovf")
	b.ReportMetric(last.MustValue("bp", exp.KeyOverflows), "bp-ovf")
}

// BenchmarkBufferOccupancy regenerates the §VI-C average-buffer-size
// observation (paper: 43 of 50).
func BenchmarkBufferOccupancy(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.BufferOccupancy(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue(core.Name, exp.KeyAvgBuffer), "avg-buffer")
}

// BenchmarkAblation regenerates the design-choice ablation table.
func BenchmarkAblation(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Ablation(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue(core.Name, exp.KeyWakeups), "pbpl-wk/s")
	b.ReportMetric(last.MustValue(core.Name+"-nolatch", exp.KeyWakeups), "nolatch-wk/s")
}

// BenchmarkSimulatorThroughput measures raw simulator speed: virtual
// producer-consumer events processed per wall-clock second (harness
// health, not a paper artifact).
func BenchmarkSimulatorThroughput(b *testing.B) {
	base := exp.MultiBase(5, 2*simtime.Second, 1998, 25)
	var items uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := impls.Run(impls.BP, base)
		if err != nil {
			b.Fatal(err)
		}
		items += r.Produced
	}
	b.ReportMetric(float64(items)/b.Elapsed().Seconds(), "items/s")
}

// BenchmarkPBPLRun measures a full PBPL simulation run.
func BenchmarkPBPLRun(b *testing.B) {
	base := exp.MultiBase(5, 2*simtime.Second, 1998, 25)
	cfg := core.DefaultConfig(base)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLivePut measures the live runtime's producer fast path.
func BenchmarkLivePut(b *testing.B) {
	rt, err := New(WithSlotSize(5*time.Millisecond), WithMaxLatency(50*time.Millisecond), WithBuffer(1<<16))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	var mu sync.Mutex
	drained := 0
	pair, err := Open(rt, Batch(func(batch []int) {
		mu.Lock()
		drained += len(batch)
		mu.Unlock()
	}))

	if err != nil {
		b.Fatal(err)
	}
	defer pair.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pair.Put(i) != nil {
			time.Sleep(time.Microsecond)
		}
	}
}

// BenchmarkLivePutBatch measures the bulk producer path: one PutBatch
// per 64 items against BenchmarkLivePut's item-at-a-time loop. The
// "kicks/item" metric shows the saved manager wakeup checks — a batch
// pays at most one kick where the Put loop pays an armed-check (and
// possibly a kick) per item.
func BenchmarkLivePutBatch(b *testing.B) {
	rt, err := New(WithSlotSize(5*time.Millisecond), WithMaxLatency(50*time.Millisecond), WithBuffer(1<<16))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	var mu sync.Mutex
	drained := 0
	pair, err := Open(rt, Batch(func(batch []int) {
		mu.Lock()
		drained += len(batch)
		mu.Unlock()
	}))

	if err != nil {
		b.Fatal(err)
	}
	defer pair.Close()
	const batch = 64
	items := make([]int, batch)
	b.ReportAllocs()
	b.ResetTimer()
	sent := 0
	for sent < b.N {
		if len(items) > b.N-sent {
			items = items[:b.N-sent]
		}
		n, err := pair.PutBatch(items)
		sent += n
		if err != nil {
			time.Sleep(time.Microsecond) // quota full: drain underway
		}
	}
	b.StopTimer()
	if b.N > 0 {
		b.ReportMetric(float64(pair.Stats().Kicks)/float64(b.N), "kicks/item")
	}
}

// BenchmarkLiveEndToEnd measures delivered items/s through the live
// runtime, batching included.
func BenchmarkLiveEndToEnd(b *testing.B) {
	rt, err := New(WithSlotSize(2*time.Millisecond), WithMaxLatency(20*time.Millisecond), WithBuffer(1<<14))
	if err != nil {
		b.Fatal(err)
	}
	defer rt.Close()
	done := make(chan struct{})
	var mu sync.Mutex
	drained := 0
	target := b.N
	pair, err := Open(rt, Batch(func(batch []int) {
		mu.Lock()
		drained += len(batch)
		d := drained
		mu.Unlock()
		if d >= target {
			select {
			case done <- struct{}{}:
			default:
			}
		}
	}))

	if err != nil {
		b.Fatal(err)
	}
	defer pair.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for pair.Put(i) != nil {
			time.Sleep(time.Microsecond)
		}
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		b.Fatal("drain timeout")
	}
	st := rt.Stats()
	if w := st.TimerWakes + st.ForcedWakes; w > 0 {
		b.ReportMetric(float64(st.ItemsOut)/float64(w), "items/wakeup")
	}
}

// BenchmarkLatencyTradeoff regenerates the latency-vs-power table (the
// §III-C trade the paper states in prose).
func BenchmarkLatencyTradeoff(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Latency(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue(core.Name, exp.KeyLatencyP50), "pbpl-p50-ms")
	b.ReportMetric(last.MustValue("mutex", exp.KeyLatencyP50), "mutex-p50-ms")
}

// BenchmarkPredictors regenerates the §VIII estimator comparison.
func BenchmarkPredictors(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Predictors(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("pbpl/ma(8)", exp.KeyWakeups), "ma8-wk/s")
	b.ReportMetric(last.MustValue("pbpl/kalman", exp.KeyWakeups), "kalman-wk/s")
}

// BenchmarkRaceToIdle regenerates the §II DVFS sensitivity table.
func BenchmarkRaceToIdle(b *testing.B) {
	var last exp.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.RaceToIdle(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	b.ReportMetric(last.MustValue("bp@f=0.4", exp.KeyPower), "f0.4-mW")
	b.ReportMetric(last.MustValue("bp@f=1.0", exp.KeyPower), "f1.0-mW")
}
