package repro

import "time"

// EventKind classifies runtime observer events.
type EventKind int

// Observer event kinds.
const (
	// EventDrain: a pair's buffer was drained through its handler.
	EventDrain EventKind = iota
	// EventReserve: a pair reserved a track slot.
	EventReserve
	// EventIdle: a pair went idle (no reservation; the next Put re-arms
	// it).
	EventIdle
	// EventPairOpen: a pair was registered with the runtime. Unlike the
	// kinds above it fires on the caller's goroutine (Open), not the
	// core manager's.
	EventPairOpen
	// EventPairClose: a pair was closed and its pool capacity released.
	// Fires on the goroutine calling Pair.Close.
	EventPairClose
	// EventMigrate: the placement controller moved a pair to another
	// manager. Fires on the controller goroutine, after the source
	// manager's quiesce drain and ownership hand-over.
	EventMigrate
	// EventQuarantine: a pair's circuit breaker opened after K
	// consecutive handler failures; the pair stops draining except for
	// half-open probes and Put fails fast with ErrQuarantined.
	EventQuarantine
	// EventRecover: a quarantined pair's probe succeeded and the
	// breaker closed; normal draining resumes.
	EventRecover
	// EventRedeliver: a previously failed batch is being handed to the
	// handler again (Items is the batch size). May fire on a probe
	// goroutine rather than the core manager's.
	EventRedeliver
	// EventDrop: items were discarded after redelivery exhaustion or a
	// failure during a final drain (Items is the count). The drop is
	// accounted in Stats.ItemsDropped, never silent.
	EventDrop
	// EventOverrun: a handler exceeded its HandlerTimeout
	// deadline and the pair was marked degraded. Fires on the watchdog
	// goroutine while the handler is still running.
	EventOverrun
)

func (k EventKind) String() string {
	switch k {
	case EventDrain:
		return "drain"
	case EventReserve:
		return "reserve"
	case EventIdle:
		return "idle"
	case EventPairOpen:
		return "pair-open"
	case EventPairClose:
		return "pair-close"
	case EventMigrate:
		return "migrate"
	case EventQuarantine:
		return "quarantine"
	case EventRecover:
		return "recover"
	case EventRedeliver:
		return "redeliver"
	case EventDrop:
		return "drop"
	case EventOverrun:
		return "overrun"
	default:
		return "unknown"
	}
}

// Event is one observable runtime action, for debugging and
// instrumentation (the live analogue of the simulator's
// InvocationTrace).
type Event struct {
	Kind EventKind
	// Pair is the pair's runtime-assigned id.
	Pair int
	// At is the event time relative to Runtime start.
	At time.Duration
	// Items drained (EventDrain only).
	Items int
	// Scheduled is true for slot-timer drains, false for forced ones
	// (EventDrain only).
	Scheduled bool
	// Slot is the reserved slot index (EventReserve only).
	Slot int64
	// Manager is the destination manager index (EventMigrate only).
	Manager int
}

// WithObserver installs a callback invoked for every drain, reservation
// and idle transition. It usually runs on the core-manager goroutine
// (quarantine probes, watchdog overruns and pair open/close fire on
// their own goroutines — the callback must be safe for concurrent
// use): keep it fast and non-blocking, or it will delay every consumer
// latched onto the same wakeups.
func WithObserver(fn func(Event)) Option {
	return func(o *options) { o.observer = fn }
}
