package repro

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// The old constructor surface is deprecated but must keep compiling
// and behaving: NewPair/NewPairFunc delegate to Open with the old
// mutex-guarded (concurrent-producer-safe) queue, and the PairWith*
// shims keep their historical silent clamping.

func TestDeprecatedConstructorsStillWork(t *testing.T) {
	rt, err := New(WithSlotSize(time.Millisecond), WithMaxLatency(5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	got := 0
	p, err := NewPair(rt, func(batch []int) { got += len(batch) },
		PairWithMaxLatency(10*time.Millisecond),
		PairWithHandlerTimeout(-1), // old API: clamped to disabled, not an error
		PairWithBreaker(-5),        // old API: clamped to 0
		PairWithRedelivery(-2),     // old API: clamped to at-most-once
	)
	if err != nil {
		t.Fatalf("NewPair with clamped options: %v", err)
	}
	for i := 0; i < 7; i++ {
		if err := p.Put(i); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Fatalf("handler saw %d of 7 items", got)
	}

	fed := 0
	pf, err := NewPairFunc(rt, func(_ context.Context, batch []string) error {
		fed += len(batch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Put("x"); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if fed != 1 {
		t.Fatalf("func handler saw %d of 1", fed)
	}
}

// The new options reject what the shims clamp.
func TestPairOptionValidationErrors(t *testing.T) {
	rt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	cases := []struct {
		name string
		opt  PairOption
		want string
	}{
		{"MaxLatencyZero", MaxLatency(0), "MaxLatency"},
		{"MaxLatencyNegative", MaxLatency(-time.Second), "MaxLatency"},
		{"HandlerTimeoutNegative", HandlerTimeout(-time.Second), "HandlerTimeout"},
		{"BreakerNegative", Breaker(-1), "Breaker"},
		{"RedeliveryNegative", Redelivery(-1), "Redelivery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Open(rt, Batch(func([]int) {}), tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Open with %s = %v, want error naming %s", tc.name, err, tc.want)
			}
		})
	}

	// Several invalid options are reported together, not first-only.
	_, err = Open(rt, Batch(func([]int) {}), Breaker(-1), Redelivery(-1))
	if err == nil || !strings.Contains(err.Error(), "Breaker") || !strings.Contains(err.Error(), "Redelivery") {
		t.Fatalf("joined validation error = %v", err)
	}
}

func TestWithTimelineValidation(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		if _, err := New(WithTimeline(capacity)); err == nil ||
			!strings.Contains(err.Error(), "WithTimeline") {
			t.Fatalf("New(WithTimeline(%d)) = %v, want construction error", capacity, err)
		}
	}
	rt, err := New(WithTimeline(TimelineDefaultCap))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// Open on a closed runtime must keep returning ErrClosed through the
// shims too (they share the path).
func TestDeprecatedConstructorClosedRuntime(t *testing.T) {
	rt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewPair(rt, func([]int) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewPair on closed runtime = %v", err)
	}
}
