package repro

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestPowerCapDisabledZeroState verifies the zero-value state and
// counter when no cap is configured.
func TestPowerCapDisabledZeroState(t *testing.T) {
	rt, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	if st := rt.PowerCap(); st.Enabled {
		t.Fatalf("PowerCap().Enabled = true without WithPowerCap: %+v", st)
	}
	if s := rt.Stats(); s.PowerThrottles != 0 {
		t.Fatalf("Stats.PowerThrottles = %d without a cap", s.PowerThrottles)
	}
}

// TestPowerCapValidation verifies New rejects nonsense budgets.
func TestPowerCapValidation(t *testing.T) {
	if _, err := New(WithPowerCap(PowerCapConfig{Milliwatts: 0})); err == nil {
		t.Fatal("New accepted a zero power cap")
	}
	if _, err := New(WithPowerCap(PowerCapConfig{Milliwatts: -5})); err == nil {
		t.Fatal("New accepted a negative power cap")
	}
	if _, err := New(WithPowerCap(PowerCapConfig{Milliwatts: 100, Interval: -time.Second})); err == nil {
		t.Fatal("New accepted a negative cap interval")
	}
}

// TestPowerCapIdleStateReporting verifies the controller reports its
// configuration and stays unthrottled on an idle runtime.
func TestPowerCapIdleStateReporting(t *testing.T) {
	rt, err := New(WithPowerCap(PowerCapConfig{
		Milliwatts: 5000,
		Interval:   5 * time.Millisecond,
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	time.Sleep(50 * time.Millisecond) // several controller ticks
	st := rt.PowerCap()
	if !st.Enabled || st.Pace {
		t.Fatalf("state = %+v, want Enabled race-to-idle", st)
	}
	if st.CapMilliwatts != 5000 {
		t.Fatalf("CapMilliwatts = %v, want 5000", st.CapMilliwatts)
	}
	if st.Throttled || st.Step != 0 || st.ThrottleEvents != 0 {
		t.Fatalf("idle runtime throttled: %+v", st)
	}
	if st.Frequency != 1 || st.OmegaScale != 1 || st.BudgetScale != 1 {
		t.Fatalf("idle knobs moved: %+v", st)
	}
}

// TestPowerCapThrottlesUnderLoad drives real traffic under an
// unattainably tight budget and verifies the live controller walks the
// ladder (events counted in Stats, knobs applied, frequency lowered)
// while the runtime still delivers every item. Run with -race: the
// controller, the placement goroutine and the managers all touch the
// shared knobs.
func TestPowerCapThrottlesUnderLoad(t *testing.T) {
	rt, err := New(
		WithManagers(4),
		WithSlotSize(2*time.Millisecond),
		WithMaxLatency(20*time.Millisecond),
		WithConsolidation(ConsolidationConfig{Interval: 5 * time.Millisecond}),
		WithPowerCap(PowerCapConfig{
			// ~0 budget: any measurable activity must escalate.
			Milliwatts: 0.5,
			Interval:   5 * time.Millisecond,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}

	const pairsN = 4
	const perPair = 2000
	var delivered atomic.Uint64
	pairs := make([]*Pair[int], pairsN)
	for i := range pairs {
		pairs[i], err = Open(rt, Batch(func(batch []int) {
			delivered.Add(uint64(len(batch)))
		}))
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pairs {
		for i := 0; i < perPair; i++ {
			if err := p.PutWait(i, time.Second); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
	}

	// The controller needs a few windows with traffic in them; keep a
	// trickle going until it visibly throttles.
	deadline := time.Now().Add(5 * time.Second)
	for rt.PowerCap().ThrottleEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("controller never throttled: %+v", rt.PowerCap())
		}
		for _, p := range pairs {
			_ = p.PutWait(0, time.Second)
		}
		time.Sleep(2 * time.Millisecond)
	}

	st := rt.PowerCap()
	if !st.Throttled || st.Step == 0 {
		t.Fatalf("ThrottleEvents > 0 but state unthrottled: %+v", st)
	}
	if st.OmegaScale < 1 || st.BudgetScale < 1 || st.Frequency > 1 {
		t.Fatalf("ladder knobs out of range: %+v", st)
	}
	if st.OmegaScale == 1 && st.BudgetScale == 1 && st.Frequency == 1 {
		t.Fatalf("throttled but no knob moved: %+v", st)
	}
	if s := rt.Stats(); s.PowerThrottles != st.ThrottleEvents {
		t.Fatalf("Stats.PowerThrottles = %d, state = %d", s.PowerThrottles, st.ThrottleEvents)
	}

	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	total := rt.Stats()
	if total.ItemsOut != total.ItemsIn {
		t.Fatalf("ItemsOut %d != ItemsIn %d after Close (throttling lost items)", total.ItemsOut, total.ItemsIn)
	}
	if delivered.Load() != total.ItemsOut {
		t.Fatalf("handler saw %d items, stats say %d", delivered.Load(), total.ItemsOut)
	}
}

// TestPowerCapRecoversWithSlack verifies the controller relaxes back to
// rung 0 once load stops: no sticky throttle in the live runtime.
func TestPowerCapRecoversWithSlack(t *testing.T) {
	rt, err := New(
		WithSlotSize(2*time.Millisecond),
		WithMaxLatency(20*time.Millisecond),
		WithPowerCap(PowerCapConfig{
			Milliwatts: 40,
			Interval:   5 * time.Millisecond,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	p, err := Open(rt, Batch(func([]int) {}))
	if err != nil {
		t.Fatal(err)
	}

	// Burst until throttled, then go quiet and wait for full relax.
	deadline := time.Now().Add(5 * time.Second)
	for rt.PowerCap().ThrottleEvents == 0 {
		if time.Now().After(deadline) {
			t.Skip("burst never tripped the 40mW cap on this machine")
		}
		for i := 0; i < 500; i++ {
			_ = p.PutWait(i, time.Second)
		}
	}

	deadline = time.Now().Add(5 * time.Second)
	for {
		st := rt.PowerCap()
		if st.Step == 0 && !st.Throttled {
			if st.Frequency != 1 || st.OmegaScale != 1 || st.BudgetScale != 1 {
				t.Fatalf("relaxed to rung 0 but knobs stuck: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("throttle stuck after load stopped: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
