package repro

import (
	"context"
	"math"
	"runtime/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/simtime"
)

// drainReport is the outcome of one fault-isolated drain
// (Pair.drainFault): how many items were offered to the handler, how
// many it completed, how many were discarded, and how the invocation
// failed, if it did.
type drainReport struct {
	// attempted is the number of items handed to the handler
	// (redelivered + fresh); zero means the handler never ran.
	attempted int
	// delivered is the number of items the handler completed cleanly.
	delivered int
	// dropped is the number of items discarded (redelivery exhausted,
	// or a failure on a final drain).
	dropped int
	// dequeued is the number of fresh items popped from the queue this
	// call — the rate-predictor signal (redelivered items were already
	// dequeued by an earlier drain).
	dequeued int
	// failed is true when any invocation panicked, returned an error,
	// or overran its deadline.
	failed bool
	// timedOut is true when an invocation overran its
	// HandlerTimeout deadline (the caller should re-sample the
	// clock: the handler stole that time from the manager goroutine).
	timedOut bool
}

// pairState is the manager-side, type-erased view of a pair. Except for
// the atomic flags, all fields are owned by the manager goroutine.
type pairState struct {
	id int
	// mgr is the manager currently owning the pair. It only changes on
	// the owning manager's goroutine (see Runtime.migrate), so a command
	// running there that observes mgr == m can rely on ownership staying
	// put for its whole duration.
	mgr atomic.Pointer[manager]

	// drainFault drains the pair's queue through its handler with panic
	// recovery, watchdog and redelivery handling (type erasure over
	// Pair[T]). final marks shutdown/close drains, where a failed batch
	// is dropped (and accounted) instead of retained.
	drainFault func(final bool) drainReport
	// pending returns the current queue length.
	pending func() int
	// quota returns the pair's current elastic queue quota.
	quota func() int
	// setQuota adjusts the pair's elastic queue quota.
	setQuota func(int)

	// obs is the pair's latency instrumentation; nil unless the runtime
	// was built WithHistograms (the only hot-path cost then is this nil
	// check).
	obs *pairObs

	pred         predict.Predictor
	planner      *core.Planner
	lastDrain    simtime.Time
	reservedSlot int64 // -1 when none; manager-owned

	// Fault-tolerance configuration, fixed at creation.
	handlerTimeout time.Duration    // 0: no watchdog
	breakerK       int              // consecutive failures to quarantine; 0: breaker off
	maxRedeliver   int              // redeliveries before a failed batch drops
	baseBackoff    simtime.Duration // first probe/redelivery delay (one slot)
	maxBackoff     simtime.Duration // probe backoff cap

	// Circuit-breaker state, owned by the manager goroutine.
	consecFails int
	backoff     simtime.Duration
	// probeAt is when the next half-open probe may run (simtime nanos;
	// atomic so Put can admit probe fodder once it is due).
	probeAt atomic.Int64

	// Per-pair counters (atomics: read by PairStats from any goroutine,
	// written on the producer and manager paths).
	itemsIn      atomic.Uint64
	itemsOut     atomic.Uint64
	invocations  atomic.Uint64
	overflows    atomic.Uint64
	kicks        atomic.Uint64
	panics       atomic.Uint64
	herrors      atomic.Uint64
	timeouts     atomic.Uint64
	quarantines  atomic.Uint64
	redeliveries atomic.Uint64
	dropped      atomic.Uint64
	handedOff    atomic.Uint64

	// armed is true while the manager holds (or is about to compute) a
	// reservation for this pair. Producers set it on the first item
	// into an empty, unarmed pair and kick the manager.
	armed atomic.Bool
	// forcePending coalesces overflow force requests.
	forcePending atomic.Bool
	closed       atomic.Bool
	// quarantined is true while the circuit breaker is open.
	quarantined atomic.Bool
	// degraded is set by the watchdog when a handler overruns its
	// deadline; cleared by the next clean invocation.
	degraded atomic.Bool
	// probing is true while a half-open probe runs on its own goroutine.
	probing atomic.Bool
	// retained is the size of the failed batch held for redelivery.
	retained atomic.Int64

	// lastRate holds the float bits of the pair's latest predicted rate
	// (items/s), published on every plan so the placement controller can
	// read it without touching the manager-owned predictor.
	lastRate atomic.Uint64
}

// predictedRate returns the pair's last published predicted rate.
func (st *pairState) predictedRate() float64 {
	return math.Float64frombits(st.lastRate.Load())
}

// runOnOwner executes f on the goroutine of the manager that currently
// owns the pair, retrying if a migration moves the pair between the
// ownership read and the command running. Ownership changes only on the
// owner's goroutine, so once the command observes st.mgr == m it stays
// stable for f's whole duration. Returns false if the owning manager
// has shut down.
func (st *pairState) runOnOwner(f func(m *manager)) bool {
	for {
		m := st.mgr.Load()
		moved := false
		ok := m.run(func() {
			if st.mgr.Load() != m {
				moved = true
				return
			}
			f(m)
		})
		if !ok {
			return false
		}
		if !moved {
			return true
		}
	}
}

// countInvocation credits one handler invocation to the pair's and the
// runtime's counters (item movement is counted inside drainFault).
func (st *pairState) countInvocation(rt *Runtime) {
	rt.stats.invocations.Add(1)
	st.invocations.Add(1)
}

// countFinal credits a shutdown-path drain: invocations only fire when
// the handler actually ran.
func (st *pairState) countFinal(rt *Runtime, rep drainReport) {
	if rep.attempted > 0 {
		st.countInvocation(rt)
	}
}

// probeDue reports whether the next half-open probe time has arrived.
func (st *pairState) probeDue(now simtime.Time) bool {
	return now >= simtime.Time(st.probeAt.Load())
}

// pairStats snapshots the pair's counters.
func (st *pairState) pairStats() PairStats {
	return PairStats{
		ItemsIn:      st.itemsIn.Load(),
		ItemsOut:     st.itemsOut.Load(),
		Invocations:  st.invocations.Load(),
		Overflows:    st.overflows.Load(),
		Kicks:        st.kicks.Load(),
		Panics:       st.panics.Load(),
		Errors:       st.herrors.Load(),
		Timeouts:     st.timeouts.Load(),
		Quarantines:  st.quarantines.Load(),
		Redeliveries: st.redeliveries.Load(),
		Dropped:      st.dropped.Load(),
		HandedOff:    st.handedOff.Load(),
	}
}

// manager is a live core manager (§V-B): one goroutine owning a slot
// track, its reservations, and a single timer armed at the earliest
// reserved slot. Consumer handlers run serially on this goroutine —
// a core executes one consumer at a time, which is precisely what
// makes latching free.
type manager struct {
	rt  *Runtime
	id  int
	res map[int64][]*pairState

	cmds  chan func()
	kick  chan *pairState
	force chan *pairState
	done  chan struct{}

	timer *time.Timer

	// labelCtx carries the goroutine's pprof labels (pbpl_manager) so
	// per-drain pair labels can nest under them via pprof.Do; set once
	// at the top of loop.
	labelCtx context.Context

	// Per-manager wakeup counters (atomics: incremented alongside the
	// runtime totals, read by ManagerSnapshots from any goroutine). They
	// expose where the wakeups happen, which is what the placement
	// controller is trying to shrink.
	timerWakes  atomic.Uint64
	forcedWakes atomic.Uint64
}

func newManager(rt *Runtime, id int) *manager {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &manager{
		rt:    rt,
		id:    id,
		res:   make(map[int64][]*pairState),
		cmds:  make(chan func(), 16),
		kick:  make(chan *pairState, 128),
		force: make(chan *pairState, 128),
		done:  make(chan struct{}),
		timer: t,
	}
}

// Has implements core.Reservations.
func (m *manager) Has(slot int64) bool { return len(m.res[slot]) > 0 }

// PrevReserved implements core.Reservations.
func (m *manager) PrevReserved(before, after int64) (int64, bool) {
	best := int64(0)
	found := false
	for slot, ps := range m.res {
		if len(ps) == 0 {
			continue
		}
		if slot > after && slot < before && (!found || slot > best) {
			best = slot
			found = true
		}
	}
	return best, found
}

func (m *manager) earliest() (int64, bool) {
	best := int64(0)
	found := false
	for slot, ps := range m.res {
		if len(ps) == 0 {
			continue
		}
		if !found || slot < best {
			best = slot
			found = true
		}
	}
	return best, found
}

// loop is the manager goroutine: arm the timer at the earliest reserved
// slot, then react to timer expirations, overflow forces, producer
// kicks and control commands. On shutdown it drains every registered
// pair one final time.
func (m *manager) loop() {
	// Label the goroutine so pprof samples and runtime/trace attribute
	// time to this core manager.
	m.labelCtx = pprof.WithLabels(context.Background(),
		pprof.Labels("pbpl_manager", strconv.Itoa(m.id)))
	pprof.SetGoroutineLabels(m.labelCtx)
	defer m.finalDrain()
	for {
		var timerC <-chan time.Time
		if slot, ok := m.earliest(); ok {
			d := time.Until(m.rt.wallAt(m.rt.planner.Track.Start(slot)))
			if d < 0 {
				d = 0
			}
			if !m.timer.Stop() {
				select {
				case <-m.timer.C:
				default:
				}
			}
			m.timer.Reset(d)
			timerC = m.timer.C
		}

		select {
		case <-m.done:
			return
		case f := <-m.cmds:
			f()
		case p := <-m.kick:
			if p.mgr.Load() != m {
				// Stale: the pair migrated away while this kick was
				// queued; the migration's hand-off kick covers it.
				continue
			}
			m.onKick(p)
		case p := <-m.force:
			p.forcePending.Store(false)
			if p.mgr.Load() != m {
				// Stale after migration. The quiesce drain already
				// emptied the pair at hand-off; the next overflow
				// re-forces at the current owner.
				continue
			}
			if !p.closed.Load() {
				m.rt.stats.forcedWakes.Add(1)
				m.forcedWakes.Add(1)
				now := m.rt.now()
				wake := m.rt.timelineAppend(obs.Record{
					Kind:    obs.KindForcedWake,
					Nanos:   int64(now),
					Manager: m.id,
					Slot:    m.rt.planner.Track.Index(now),
					Pair:    uint64(p.id),
					Items:   p.pending(),
				})
				m.drainAndPlan(p, now, false, wake)
			}
		case <-timerC:
			m.onTimer()
		}
	}
}

// onTimer fires every reserved slot whose start has passed. One timer
// expiration serving several pairs is the latching payoff — gather the
// due pairs first so the timeline can record one fire covering them
// all (and so reservations made while draining never join this round).
func (m *manager) onTimer() {
	now := m.rt.now()
	nowSlot := m.rt.planner.Track.Index(now)
	var due []*pairState
	for slot, ps := range m.res {
		if slot > nowSlot || len(ps) == 0 {
			continue
		}
		delete(m.res, slot)
		for _, p := range ps {
			p.reservedSlot = -1
			due = append(due, p)
		}
	}
	if len(due) == 0 {
		return
	}
	m.rt.stats.timerWakes.Add(1)
	m.timerWakes.Add(1)
	wake := m.rt.timelineAppend(obs.Record{
		Kind:    obs.KindTimerFire,
		Nanos:   int64(now),
		Manager: m.id,
		Slot:    nowSlot,
		Items:   len(due),
	})
	var t0 int64
	o := m.rt.obs
	if o != nil && o.hist {
		t0 = o.clock.Precise()
	}
	for _, p := range due {
		m.drainAndPlan(p, now, true, wake)
	}
	if o != nil && o.hist {
		o.mgrDrain[m.id].Record(o.clock.Precise() - t0)
	}
}

// onKick handles a producer's arm request: a pair that had no
// reservation received its first item.
func (m *manager) onKick(p *pairState) {
	if p.closed.Load() || p.reservedSlot >= 0 {
		return
	}
	m.plan(p, m.rt.now())
}

// drainAndPlan runs one consumer invocation: drain through the handler
// (with fault isolation), settle the breaker, and reserve the next
// slot. scheduled distinguishes slot-timer drains from overflow-forced
// ones; wake is the timeline sequence of the fire that triggered this
// drain (0 when the timeline is off). A quarantined pair never drains
// inline here: once its probe time arrives the half-open probe runs on
// its own goroutine, so a handler that is still broken (or still
// stalling) cannot re-block the other pairs sharing this manager.
func (m *manager) drainAndPlan(p *pairState, now simtime.Time, scheduled bool, wake uint64) {
	m.deregister(p)
	if p.quarantined.Load() {
		if !p.probeDue(now) {
			p.armed.Store(true)
			m.reserve(p, m.slotAfter(simtime.Time(p.probeAt.Load())))
			return
		}
		if !p.probing.Swap(true) {
			m.rt.wg.Add(1)
			go func() {
				defer m.rt.wg.Done()
				m.probe(p)
			}()
		}
		return
	}
	var rep drainReport
	pprof.Do(m.labelCtx, pprof.Labels("pbpl_pair", strconv.Itoa(p.id)), func(context.Context) {
		rep = p.drainFault(false)
	})
	m.rt.timelineAppend(obs.Record{
		Kind:    obs.KindDrain,
		Nanos:   int64(m.rt.now()),
		Manager: m.id,
		Slot:    m.rt.planner.Track.Index(now),
		Pair:    uint64(p.id),
		Wake:    wake,
		Items:   rep.delivered,
	})
	if rep.timedOut {
		// The handler overran its deadline inline on this goroutine.
		// Re-sample the clock so the next reservation charges the
		// stolen time instead of pretending the drain was punctual.
		now = m.rt.now()
	}
	if cb := m.rt.opts.observer; cb != nil {
		cb(Event{Kind: EventDrain, Pair: p.id, At: time.Duration(now), Items: rep.delivered, Scheduled: scheduled})
	}
	p.countInvocation(m.rt)
	if dt := now.Sub(p.lastDrain); dt > 0 {
		p.pred.Observe(float64(rep.dequeued) / dt.Seconds())
	}
	p.lastDrain = now
	m.settle(p, rep, now)
}

// settle applies one drain outcome to the pair's circuit breaker and
// schedules what happens next: a normal plan, a redelivery slot, or a
// quarantine probe. Runs on the owning manager's goroutine.
func (m *manager) settle(p *pairState, rep drainReport, now simtime.Time) {
	if p.closed.Load() {
		return
	}
	if p.quarantined.Load() {
		switch {
		case rep.failed:
			// Failed half-open probe: back off exponentially.
			p.consecFails++
			p.backoff *= 2
			if p.backoff > p.maxBackoff {
				p.backoff = p.maxBackoff
			}
			m.scheduleProbe(p, now)
		case rep.attempted == 0:
			// Nothing to prove (no retained batch, no probe fodder):
			// hold the breaker state and probe again without widening
			// the backoff.
			m.scheduleProbe(p, now)
		default:
			// Successful delivery: close the breaker.
			p.quarantined.Store(false)
			p.consecFails = 0
			p.backoff = 0
			p.degraded.Store(false)
			m.rt.stats.recoveries.Add(1)
			if cb := m.rt.opts.observer; cb != nil {
				cb(Event{Kind: EventRecover, Pair: p.id, At: time.Duration(now)})
			}
			m.rt.timelineAppend(obs.Record{
				Kind:    obs.KindRecover,
				Nanos:   int64(now),
				Manager: m.id,
				Slot:    m.rt.planner.Track.Index(now),
				Pair:    uint64(p.id),
			})
			m.plan(p, now)
		}
		return
	}
	if rep.failed {
		p.consecFails++
		if p.breakerK > 0 && p.consecFails >= p.breakerK {
			p.quarantined.Store(true)
			p.backoff = p.baseBackoff
			p.quarantines.Add(1)
			m.rt.stats.quarantines.Add(1)
			if cb := m.rt.opts.observer; cb != nil {
				cb(Event{Kind: EventQuarantine, Pair: p.id, At: time.Duration(now)})
			}
			m.rt.timelineAppend(obs.Record{
				Kind:    obs.KindQuarantine,
				Nanos:   int64(now),
				Manager: m.id,
				Slot:    m.rt.planner.Track.Index(now),
				Pair:    uint64(p.id),
			})
			m.scheduleProbe(p, now)
			return
		}
		if p.retained.Load() > 0 {
			// Redeliver the failed batch at the next slot after one
			// slot's grace.
			p.armed.Store(true)
			m.reserve(p, m.slotAfter(now.Add(p.baseBackoff)))
			return
		}
		m.plan(p, now)
		return
	}
	if rep.attempted > 0 {
		p.consecFails = 0
		p.degraded.Store(false)
	}
	m.plan(p, now)
}

// scheduleProbe reserves the pair's next half-open probe slot.
func (m *manager) scheduleProbe(p *pairState, now simtime.Time) {
	at := now.Add(p.backoff)
	p.probeAt.Store(int64(at))
	p.armed.Store(true)
	m.reserve(p, m.slotAfter(at))
}

// probe runs one half-open invocation of a quarantined pair on its own
// goroutine and settles the outcome back on the owning manager.
func (m *manager) probe(p *pairState) {
	rep := p.drainFault(false)
	now := m.rt.now()
	if rep.attempted > 0 {
		p.countInvocation(m.rt)
		if cb := m.rt.opts.observer; cb != nil {
			cb(Event{Kind: EventDrain, Pair: p.id, At: time.Duration(now), Items: rep.delivered})
		}
	}
	ok := p.runOnOwner(func(cur *manager) {
		p.probing.Store(false)
		cur.settle(p, rep, cur.rt.now())
	})
	if !ok {
		// Owner shut down mid-probe; Runtime.Close's final sweep picks
		// up anything the probe left behind.
		p.probing.Store(false)
	}
}

// slotAfter returns the first slot whose start is at or after t.
func (m *manager) slotAfter(t simtime.Time) int64 {
	return m.rt.planner.Track.Index(t) + 1
}

// plan consults the shared PBPL planner and applies its decision.
func (m *manager) plan(p *pairState, now simtime.Time) {
	if p.closed.Load() {
		return
	}
	if p.quarantined.Load() {
		// Hand-off or kick while quarantined: keep probing, never a
		// normal reservation.
		if p.reservedSlot < 0 && !p.probing.Load() {
			at := simtime.Time(p.probeAt.Load())
			if at < now {
				at = now
			}
			p.armed.Store(true)
			m.reserve(p, m.slotAfter(at))
		}
		return
	}
	if p.retained.Load() > 0 && p.reservedSlot < 0 {
		// A failed batch awaits redelivery (e.g. right after a
		// migration hand-off): schedule it ahead of normal planning.
		p.armed.Store(true)
		m.reserve(p, m.slotAfter(now.Add(p.baseBackoff)))
		return
	}
	rhat := p.pred.Predict()
	p.lastRate.Store(math.Float64bits(rhat))
	plan := p.planner.Next(now, rhat, p.pending(), m, func(want int) int {
		return m.rt.requestQuota(p.id, want)
	})
	if plan.Quota >= 0 {
		p.setQuota(plan.Quota)
	}
	if !plan.Reserve {
		// Going idle: allow producers to re-arm us, then re-check for
		// an item that raced in between the pending() read and the
		// flag flip.
		if cb := m.rt.opts.observer; cb != nil {
			cb(Event{Kind: EventIdle, Pair: p.id, At: time.Duration(now)})
		}
		p.armed.Store(false)
		if p.pending() > 0 && !p.armed.Swap(true) {
			m.plan(p, now)
		}
		return
	}
	p.armed.Store(true)
	if cb := m.rt.opts.observer; cb != nil {
		cb(Event{Kind: EventReserve, Pair: p.id, At: time.Duration(now), Slot: plan.Slot})
	}
	m.reserve(p, plan.Slot)
}

func (m *manager) reserve(p *pairState, slot int64) {
	if p.reservedSlot == slot {
		return
	}
	m.deregister(p)
	m.res[slot] = append(m.res[slot], p)
	p.reservedSlot = slot
}

func (m *manager) deregister(p *pairState) {
	if p.reservedSlot < 0 {
		return
	}
	list := m.res[p.reservedSlot]
	for i, other := range list {
		if other == p {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(m.res, p.reservedSlot)
	} else {
		m.res[p.reservedSlot] = list
	}
	p.reservedSlot = -1
}

// finalDrain empties every pair still holding items at shutdown. These
// drains are final: a batch whose handler fails here is dropped and
// accounted in ItemsDropped, never retained.
func (m *manager) finalDrain() {
	seen := map[*pairState]bool{}
	for _, ps := range m.res {
		for _, p := range ps {
			seen[p] = true
		}
	}
	// Also catch pairs with pending items but no reservation (queued
	// kicks/forces that will never be served).
	for {
		select {
		case p := <-m.kick:
			seen[p] = true
			continue
		case p := <-m.force:
			seen[p] = true
			continue
		default:
		}
		break
	}
	for p := range seen {
		p.reservedSlot = -1
	}
	m.res = map[int64][]*pairState{}
	for p := range seen {
		rep := p.drainFault(true)
		if rep.attempted > 0 {
			p.countInvocation(m.rt)
			if cb := m.rt.opts.observer; cb != nil {
				cb(Event{Kind: EventDrain, Pair: p.id, At: time.Duration(m.rt.now()), Items: rep.delivered})
			}
		}
	}
}

// run executes f on the manager goroutine and waits for it; used for
// registration and close sequencing. Returns false if the manager has
// shut down.
func (m *manager) run(f func()) bool {
	ack := make(chan struct{})
	select {
	case m.cmds <- func() { f(); close(ack) }:
	case <-m.done:
		return false
	}
	select {
	case <-ack:
		return true
	case <-m.done:
		return false
	}
}
