package repro

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/simtime"
)

// pairState is the manager-side, type-erased view of a pair. Except for
// the atomic flags, all fields are owned by the manager goroutine.
type pairState struct {
	id int
	// mgr is the manager currently owning the pair. It only changes on
	// the owning manager's goroutine (see Runtime.migrate), so a command
	// running there that observes mgr == m can rely on ownership staying
	// put for its whole duration.
	mgr atomic.Pointer[manager]

	// drainInto drains the pair's queue through its handler and returns
	// the item count (type erasure over Pair[T]).
	drainInto func() int
	// pending returns the current queue length.
	pending func() int
	// quota returns the pair's current elastic queue quota.
	quota func() int
	// setQuota adjusts the pair's elastic queue quota.
	setQuota func(int)

	pred         predict.Predictor
	planner      *core.Planner
	lastDrain    simtime.Time
	reservedSlot int64 // -1 when none; manager-owned

	// Per-pair counters (atomics: read by PairStats from any goroutine,
	// written on the producer and manager paths).
	itemsIn     atomic.Uint64
	itemsOut    atomic.Uint64
	invocations atomic.Uint64
	overflows   atomic.Uint64

	// armed is true while the manager holds (or is about to compute) a
	// reservation for this pair. Producers set it on the first item
	// into an empty, unarmed pair and kick the manager.
	armed atomic.Bool
	// forcePending coalesces overflow force requests.
	forcePending atomic.Bool
	closed       atomic.Bool

	// lastRate holds the float bits of the pair's latest predicted rate
	// (items/s), published on every plan so the placement controller can
	// read it without touching the manager-owned predictor.
	lastRate atomic.Uint64
}

// predictedRate returns the pair's last published predicted rate.
func (st *pairState) predictedRate() float64 {
	return math.Float64frombits(st.lastRate.Load())
}

// runOnOwner executes f on the goroutine of the manager that currently
// owns the pair, retrying if a migration moves the pair between the
// ownership read and the command running. Ownership changes only on the
// owner's goroutine, so once the command observes st.mgr == m it stays
// stable for f's whole duration. Returns false if the owning manager
// has shut down.
func (st *pairState) runOnOwner(f func(m *manager)) bool {
	for {
		m := st.mgr.Load()
		moved := false
		ok := m.run(func() {
			if st.mgr.Load() != m {
				moved = true
				return
			}
			f(m)
		})
		if !ok {
			return false
		}
		if !moved {
			return true
		}
	}
}

// countDrain credits a drain of n items to the pair's and the runtime's
// counters. It is a no-op for empty drains.
func (st *pairState) countDrain(rt *Runtime, n int) {
	if n <= 0 {
		return
	}
	rt.stats.invocations.Add(1)
	rt.stats.itemsOut.Add(uint64(n))
	st.invocations.Add(1)
	st.itemsOut.Add(uint64(n))
}

// manager is a live core manager (§V-B): one goroutine owning a slot
// track, its reservations, and a single timer armed at the earliest
// reserved slot. Consumer handlers run serially on this goroutine —
// a core executes one consumer at a time, which is precisely what
// makes latching free.
type manager struct {
	rt  *Runtime
	id  int
	res map[int64][]*pairState

	cmds  chan func()
	kick  chan *pairState
	force chan *pairState
	done  chan struct{}

	timer *time.Timer

	// Per-manager wakeup counters (atomics: incremented alongside the
	// runtime totals, read by ManagerSnapshots from any goroutine). They
	// expose where the wakeups happen, which is what the placement
	// controller is trying to shrink.
	timerWakes  atomic.Uint64
	forcedWakes atomic.Uint64
}

func newManager(rt *Runtime, id int) *manager {
	t := time.NewTimer(time.Hour)
	if !t.Stop() {
		<-t.C
	}
	return &manager{
		rt:    rt,
		id:    id,
		res:   make(map[int64][]*pairState),
		cmds:  make(chan func(), 16),
		kick:  make(chan *pairState, 128),
		force: make(chan *pairState, 128),
		done:  make(chan struct{}),
		timer: t,
	}
}

// Has implements core.Reservations.
func (m *manager) Has(slot int64) bool { return len(m.res[slot]) > 0 }

// PrevReserved implements core.Reservations.
func (m *manager) PrevReserved(before, after int64) (int64, bool) {
	best := int64(0)
	found := false
	for slot, ps := range m.res {
		if len(ps) == 0 {
			continue
		}
		if slot > after && slot < before && (!found || slot > best) {
			best = slot
			found = true
		}
	}
	return best, found
}

func (m *manager) earliest() (int64, bool) {
	best := int64(0)
	found := false
	for slot, ps := range m.res {
		if len(ps) == 0 {
			continue
		}
		if !found || slot < best {
			best = slot
			found = true
		}
	}
	return best, found
}

// loop is the manager goroutine: arm the timer at the earliest reserved
// slot, then react to timer expirations, overflow forces, producer
// kicks and control commands. On shutdown it drains every registered
// pair one final time.
func (m *manager) loop() {
	defer m.finalDrain()
	for {
		var timerC <-chan time.Time
		if slot, ok := m.earliest(); ok {
			d := time.Until(m.rt.wallAt(m.rt.planner.Track.Start(slot)))
			if d < 0 {
				d = 0
			}
			if !m.timer.Stop() {
				select {
				case <-m.timer.C:
				default:
				}
			}
			m.timer.Reset(d)
			timerC = m.timer.C
		}

		select {
		case <-m.done:
			return
		case f := <-m.cmds:
			f()
		case p := <-m.kick:
			if p.mgr.Load() != m {
				// Stale: the pair migrated away while this kick was
				// queued; the migration's hand-off kick covers it.
				continue
			}
			m.onKick(p)
		case p := <-m.force:
			p.forcePending.Store(false)
			if p.mgr.Load() != m {
				// Stale after migration. The quiesce drain already
				// emptied the pair at hand-off; the next overflow
				// re-forces at the current owner.
				continue
			}
			if !p.closed.Load() {
				m.rt.stats.forcedWakes.Add(1)
				m.forcedWakes.Add(1)
				m.drainAndPlan(p, m.rt.now(), false)
			}
		case <-timerC:
			m.onTimer()
		}
	}
}

// onTimer fires every reserved slot whose start has passed. One timer
// expiration serving several pairs is the latching payoff.
func (m *manager) onTimer() {
	now := m.rt.now()
	nowSlot := m.rt.planner.Track.Index(now)
	fired := false
	for slot, ps := range m.res {
		if slot > nowSlot || len(ps) == 0 {
			continue
		}
		fired = true
		delete(m.res, slot)
		for _, p := range ps {
			p.reservedSlot = -1
			m.drainAndPlan(p, now, true)
		}
	}
	if fired {
		m.rt.stats.timerWakes.Add(1)
		m.timerWakes.Add(1)
	}
}

// onKick handles a producer's arm request: a pair that had no
// reservation received its first item.
func (m *manager) onKick(p *pairState) {
	if p.closed.Load() || p.reservedSlot >= 0 {
		return
	}
	m.plan(p, m.rt.now())
}

// drainAndPlan runs one consumer invocation: drain through the handler,
// observe the rate, and reserve the next slot. scheduled distinguishes
// slot-timer drains from overflow-forced ones.
func (m *manager) drainAndPlan(p *pairState, now simtime.Time, scheduled bool) {
	m.deregister(p)
	n := p.drainInto()
	if obs := m.rt.opts.observer; obs != nil {
		obs(Event{Kind: EventDrain, Pair: p.id, At: time.Duration(now), Items: n, Scheduled: scheduled})
	}
	m.rt.stats.invocations.Add(1)
	m.rt.stats.itemsOut.Add(uint64(n))
	p.invocations.Add(1)
	p.itemsOut.Add(uint64(n))
	if dt := now.Sub(p.lastDrain); dt > 0 {
		p.pred.Observe(float64(n) / dt.Seconds())
	}
	p.lastDrain = now
	m.plan(p, now)
}

// plan consults the shared PBPL planner and applies its decision.
func (m *manager) plan(p *pairState, now simtime.Time) {
	if p.closed.Load() {
		return
	}
	rhat := p.pred.Predict()
	p.lastRate.Store(math.Float64bits(rhat))
	plan := p.planner.Next(now, rhat, p.pending(), m, func(want int) int {
		return m.rt.requestQuota(p.id, want)
	})
	if plan.Quota >= 0 {
		p.setQuota(plan.Quota)
	}
	if !plan.Reserve {
		// Going idle: allow producers to re-arm us, then re-check for
		// an item that raced in between the pending() read and the
		// flag flip.
		if obs := m.rt.opts.observer; obs != nil {
			obs(Event{Kind: EventIdle, Pair: p.id, At: time.Duration(now)})
		}
		p.armed.Store(false)
		if p.pending() > 0 && !p.armed.Swap(true) {
			m.plan(p, now)
		}
		return
	}
	p.armed.Store(true)
	if obs := m.rt.opts.observer; obs != nil {
		obs(Event{Kind: EventReserve, Pair: p.id, At: time.Duration(now), Slot: plan.Slot})
	}
	m.reserve(p, plan.Slot)
}

func (m *manager) reserve(p *pairState, slot int64) {
	if p.reservedSlot == slot {
		return
	}
	m.deregister(p)
	m.res[slot] = append(m.res[slot], p)
	p.reservedSlot = slot
}

func (m *manager) deregister(p *pairState) {
	if p.reservedSlot < 0 {
		return
	}
	list := m.res[p.reservedSlot]
	for i, other := range list {
		if other == p {
			list = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(list) == 0 {
		delete(m.res, p.reservedSlot)
	} else {
		m.res[p.reservedSlot] = list
	}
	p.reservedSlot = -1
}

// finalDrain empties every pair still holding items at shutdown.
func (m *manager) finalDrain() {
	seen := map[*pairState]bool{}
	for _, ps := range m.res {
		for _, p := range ps {
			seen[p] = true
		}
	}
	// Also catch pairs with pending items but no reservation (queued
	// kicks/forces that will never be served).
	for {
		select {
		case p := <-m.kick:
			seen[p] = true
			continue
		case p := <-m.force:
			seen[p] = true
			continue
		default:
		}
		break
	}
	for p := range seen {
		p.reservedSlot = -1
	}
	m.res = map[int64][]*pairState{}
	for p := range seen {
		if n := p.drainInto(); n > 0 {
			p.countDrain(m.rt, n)
			if obs := m.rt.opts.observer; obs != nil {
				obs(Event{Kind: EventDrain, Pair: p.id, At: time.Duration(m.rt.now()), Items: n})
			}
		}
	}
}

// run executes f on the manager goroutine and waits for it; used for
// registration and close sequencing. Returns false if the manager has
// shut down.
func (m *manager) run(f func()) bool {
	ack := make(chan struct{})
	select {
	case m.cmds <- func() { f(); close(ack) }:
	case <-m.done:
		return false
	}
	select {
	case <-ack:
		return true
	case <-m.done:
		return false
	}
}
