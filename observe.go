package repro

import (
	"sort"
	"time"

	"repro/internal/obs"
)

// LatencySampleEvery is the deterministic sampling stride of the
// latency histograms: every LatencySampleEvery-th item a pair accepts
// gets an enqueue stamp and contributes one observation to the wait
// and done distributions. Sampling rides the pair's existing item
// counter, so the producer pays no extra atomics — the stride is what
// keeps enabled-observability Put overhead inside its budget on small
// machines while thousands of samples per second still pin the
// quantiles to the histogram's 1/16 resolution. Histogram counts are
// therefore sampled counts (≈ items/LatencySampleEvery), not item
// counts.
const LatencySampleEvery = 1 << stampSampleShift

const (
	stampSampleShift = 3
	stampSampleMask  = LatencySampleEvery - 1
)

// obsState is the runtime's observability plumbing, built by New only
// when WithHistograms or WithTimeline is set. When neither is, rt.obs
// is nil and every hot-path hook is a single pointer check.
type obsState struct {
	hist     bool
	clock    *obs.Clock    // coarse producer clock; nil unless hist
	timeline *obs.Timeline // nil unless WithTimeline
	mgrDrain []*obs.Histogram

	// retiredWait / retiredDone accumulate closed pairs' histograms so
	// LatencyTotals covers the runtime's whole life, not just the pairs
	// still open (see removePair).
	retiredWait *obs.Histogram
	retiredDone *obs.Histogram
}

// pairObs is a pair's latency instrumentation: the stamp ring carrying
// enqueue times from the producer, and the two per-pair histograms.
type pairObs struct {
	stamps *obs.StampRing
	wait   *obs.Histogram // enqueue → handler-start
	done   *obs.Histogram // enqueue → handler-done
}

func newObsState(o options, start time.Time) *obsState {
	s := &obsState{hist: o.histograms}
	if o.timelineCap > 0 {
		s.timeline = obs.NewTimeline(o.timelineCap)
	}
	if o.histograms {
		tick := o.slotSize / 4
		if tick < 200*time.Microsecond {
			tick = 200 * time.Microsecond
		}
		if tick > 2*time.Millisecond {
			tick = 2 * time.Millisecond
		}
		s.clock = obs.NewClock(start, tick)
		s.mgrDrain = make([]*obs.Histogram, o.managers)
		for i := range s.mgrDrain {
			s.mgrDrain[i] = obs.NewHistogram()
		}
		s.retiredWait = obs.NewHistogram()
		s.retiredDone = obs.NewHistogram()
	}
	return s
}

// newPairObs sizes a pair's stamp ring to its buffer: at the 1-in-8
// sampling stride, buffer/4 stamps cover twice the quota (elastic
// lending included); anything beyond is dropped, not blocked on.
func newPairObs(buffer int) *pairObs {
	capacity := buffer / 4
	if capacity < 256 {
		capacity = 256
	}
	if capacity > 1<<16 {
		capacity = 1 << 16
	}
	return &pairObs{
		stamps: obs.NewStampRing(capacity),
		wait:   obs.NewHistogram(),
		done:   obs.NewHistogram(),
	}
}

// DefaultLatencyBounds is the bucket ladder used for Prometheus
// histogram export and LatencyDist.Cumulative: wide enough to bracket
// any sane MaxLatency, fine enough that a p99-vs-bound check has teeth.
func DefaultLatencyBounds() []time.Duration {
	return []time.Duration{
		time.Millisecond,
		2500 * time.Microsecond,
		5 * time.Millisecond,
		10 * time.Millisecond,
		25 * time.Millisecond,
		50 * time.Millisecond,
		100 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond,
		time.Second,
		2500 * time.Millisecond,
	}
}

// LatencyDist summarizes one latency histogram. Quantiles carry the
// histogram's ≤ 1/16 relative resolution error; Cumulative holds the
// counts at or below each DefaultLatencyBounds entry plus the total
// (the Prometheus `le` series).
type LatencyDist struct {
	Count      uint64
	Sum        time.Duration
	Max        time.Duration
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
	Cumulative []uint64
}

func distOf(h *obs.Histogram) LatencyDist {
	bounds := DefaultLatencyBounds()
	nanos := make([]int64, len(bounds))
	for i, b := range bounds {
		nanos[i] = int64(b)
	}
	return LatencyDist{
		Count:      h.Count(),
		Sum:        time.Duration(h.Sum()),
		Max:        time.Duration(h.Max()),
		P50:        time.Duration(h.Quantile(0.50)),
		P95:        time.Duration(h.Quantile(0.95)),
		P99:        time.Duration(h.Quantile(0.99)),
		Cumulative: h.Cumulative(nanos),
	}
}

// PairLatencies is one open pair's latency distributions (see
// Runtime.PairLatencies).
type PairLatencies struct {
	// ID is the pair's runtime-assigned id (Pair.ID).
	ID int
	// Wait is enqueue→handler-start: how long items sat buffered, the
	// latency cost of batching the planner trades against wakeups.
	Wait LatencyDist
	// Done is enqueue→handler-done: the full response latency the §IV
	// model bounds by MaxLatency.
	Done LatencyDist
	// StampDrops counts enqueue timestamps discarded on a full stamp
	// ring; those items flowed normally but went unobserved.
	StampDrops uint64
}

// PairLatencies returns every open pair's latency distributions,
// ordered by pair id. Empty when WithHistograms is off.
func (rt *Runtime) PairLatencies() []PairLatencies {
	if rt.obs == nil || !rt.obs.hist {
		return nil
	}
	rt.pairMu.Lock()
	states := make([]*pairState, 0, len(rt.pairs))
	for _, st := range rt.pairs {
		if st.obs != nil {
			states = append(states, st)
		}
	}
	rt.pairMu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	out := make([]PairLatencies, len(states))
	for i, st := range states {
		out[i] = PairLatencies{
			ID:         st.id,
			Wait:       distOf(st.obs.wait),
			Done:       distOf(st.obs.done),
			StampDrops: st.obs.stamps.Drops(),
		}
	}
	return out
}

// ManagerLatencies is one core manager's wake→drain-done distribution
// (see Runtime.ManagerLatencies).
type ManagerLatencies struct {
	ID    int
	Drain LatencyDist
}

// ManagerLatencies returns each manager's wake→drain-done latency: the
// time one timer fire (or forced wake) spent draining every latched
// pair. Empty when WithHistograms is off.
func (rt *Runtime) ManagerLatencies() []ManagerLatencies {
	if rt.obs == nil || !rt.obs.hist {
		return nil
	}
	out := make([]ManagerLatencies, len(rt.obs.mgrDrain))
	for i, h := range rt.obs.mgrDrain {
		out[i] = ManagerLatencies{ID: i, Drain: distOf(h)}
	}
	return out
}

// LatencyTotals merges every pair's histograms — open pairs plus those
// already closed — into runtime-wide wait (enqueue→handler-start) and
// done (enqueue→handler-done) distributions. ok is false when
// WithHistograms is off. Valid after Close too.
func (rt *Runtime) LatencyTotals() (wait, done LatencyDist, ok bool) {
	if rt.obs == nil || !rt.obs.hist {
		return LatencyDist{}, LatencyDist{}, false
	}
	w := obs.NewHistogram()
	d := obs.NewHistogram()
	w.Merge(rt.obs.retiredWait)
	d.Merge(rt.obs.retiredDone)
	rt.pairMu.Lock()
	states := make([]*pairState, 0, len(rt.pairs))
	for _, st := range rt.pairs {
		if st.obs != nil {
			states = append(states, st)
		}
	}
	rt.pairMu.Unlock()
	for _, st := range states {
		w.Merge(st.obs.wait)
		d.Merge(st.obs.done)
	}
	return distOf(w), distOf(d), true
}

// TimelineRecord is one wakeup-timeline entry as dumped by
// Runtime.TimelineDump and served by pcd's /debug/timeline — the live
// analogue of one mark on the paper's Fig. 6 timelines. A drain
// record's Wake equals the Seq of the timer-fire or forced-wake that
// triggered it, so several drains sharing one Wake are the latching
// payoff made visible.
type TimelineRecord struct {
	Seq     uint64 `json:"seq"`
	Kind    string `json:"kind"`
	Nanos   int64  `json:"nanos"`
	Manager int    `json:"manager"`
	Slot    int64  `json:"slot"`
	Pair    int    `json:"pair,omitempty"`
	Wake    uint64 `json:"wake,omitempty"`
	Items   int    `json:"items,omitempty"`
}

// TimelineDump returns the surviving wakeup-timeline records in order.
// The ring keeps the most recent records up to the WithTimeline
// capacity; older ones are overwritten (the documented loss bound).
// Nil when WithTimeline is off.
func (rt *Runtime) TimelineDump() []TimelineRecord {
	if rt.obs == nil || rt.obs.timeline == nil {
		return nil
	}
	recs := rt.obs.timeline.Dump()
	out := make([]TimelineRecord, len(recs))
	for i, r := range recs {
		out[i] = timelineRecordOf(r)
	}
	return out
}

// timelineRecordOf converts one ring record to its JSON shape.
func timelineRecordOf(r obs.Record) TimelineRecord {
	return TimelineRecord{
		Seq:     r.Seq,
		Kind:    r.Kind.String(),
		Nanos:   r.Nanos,
		Manager: r.Manager,
		Slot:    r.Slot,
		Pair:    int(r.Pair),
		Wake:    r.Wake,
		Items:   r.Items,
	}
}

// TimelineCap returns the timeline ring capacity (0 when WithTimeline
// is off): a dump never loses more history than this.
func (rt *Runtime) TimelineCap() int {
	if rt.obs == nil || rt.obs.timeline == nil {
		return 0
	}
	return rt.obs.timeline.Cap()
}

// timelineAppend records one timeline event if the ring is enabled,
// returning its sequence number (0 when disabled).
func (rt *Runtime) timelineAppend(r obs.Record) uint64 {
	if rt.obs == nil || rt.obs.timeline == nil {
		return 0
	}
	return rt.obs.timeline.Append(r)
}
