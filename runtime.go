package repro

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/buffer"
	"repro/internal/core"
	"repro/internal/simtime"
	"repro/internal/track"
)

// Stats is a snapshot of runtime counters. TimerWakes + ForcedWakes is
// the live analogue of the paper's wakeup objective (Eq. 4): how many
// times consumer work pulled a core manager out of its sleep.
type Stats struct {
	// TimerWakes counts slot-timer expirations that drained at least
	// one pair (the scheduled wakeups of §V-B).
	TimerWakes uint64
	// ForcedWakes counts overflow-forced drains (the unscheduled
	// wakeups of §VI-C).
	ForcedWakes uint64
	// Invocations counts pair drains, scheduled or forced.
	Invocations uint64
	// ItemsIn / ItemsOut count produced and consumed items.
	ItemsIn  uint64
	ItemsOut uint64
	// Overflows counts Put calls that found the buffer at quota.
	Overflows uint64
	// HandlerPanics counts recovered consumer-handler panics.
	HandlerPanics uint64
	// HandlerErrors counts non-nil returns from error-aware handlers
	// (see Handler and the Func adaptor).
	HandlerErrors uint64
	// HandlerTimeouts counts watchdog deadline overruns (see
	// HandlerTimeout).
	HandlerTimeouts uint64
	// Quarantines counts circuit-breaker open transitions; Recoveries
	// counts successful half-open probes closing a breaker.
	Quarantines uint64
	Recoveries  uint64
	// Redeliveries counts failed batches re-offered to their handler.
	Redeliveries uint64
	// ItemsDropped counts items discarded after redelivery exhaustion
	// or a failure during a final drain. Conservation: once every
	// producer has returned and the runtime is closed,
	// ItemsIn == ItemsOut + ItemsDropped + HandedOff.
	ItemsDropped uint64
	// Migrations counts pairs moved between managers by the placement
	// controller (see WithConsolidation).
	Migrations uint64
	// PowerThrottles counts power-cap ladder escalations (see
	// WithPowerCap). Zero unless a cap is configured.
	PowerThrottles uint64
	// HandedOff counts items extracted unprocessed by Pair.Handoff for
	// cross-process migration; they re-enter some runtime's ItemsIn when
	// the new owner ingests them.
	HandedOff uint64
}

type counters struct {
	timerWakes      atomic.Uint64
	forcedWakes     atomic.Uint64
	invocations     atomic.Uint64
	itemsIn         atomic.Uint64
	itemsOut        atomic.Uint64
	overflows       atomic.Uint64
	handlerPanics   atomic.Uint64
	handlerErrors   atomic.Uint64
	handlerTimeouts atomic.Uint64
	quarantines     atomic.Uint64
	recoveries      atomic.Uint64
	redeliveries    atomic.Uint64
	itemsDropped    atomic.Uint64
	migrations      atomic.Uint64
	handedOff       atomic.Uint64
	powerThrottles  atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		TimerWakes:      c.timerWakes.Load(),
		ForcedWakes:     c.forcedWakes.Load(),
		Invocations:     c.invocations.Load(),
		ItemsIn:         c.itemsIn.Load(),
		ItemsOut:        c.itemsOut.Load(),
		Overflows:       c.overflows.Load(),
		HandlerPanics:   c.handlerPanics.Load(),
		HandlerErrors:   c.handlerErrors.Load(),
		HandlerTimeouts: c.handlerTimeouts.Load(),
		Quarantines:     c.quarantines.Load(),
		Recoveries:      c.recoveries.Load(),
		Redeliveries:    c.redeliveries.Load(),
		ItemsDropped:    c.itemsDropped.Load(),
		Migrations:      c.migrations.Load(),
		HandedOff:       c.handedOff.Load(),
		PowerThrottles:  c.powerThrottles.Load(),
	}
}

// Runtime hosts core managers and the shared elastic buffer pool. All
// methods are safe for concurrent use.
type Runtime struct {
	opts     options
	start    time.Time
	planner  *core.Planner
	managers []*manager
	placer   *placementController // nil unless WithConsolidation
	capper   *powerCapController  // nil unless WithPowerCap
	stats    counters
	obs      *obsState // nil unless WithHistograms/WithTimeline

	poolMu sync.Mutex
	pool   *buffer.Pool

	pairMu    sync.Mutex
	nextPair  int
	openPairs int
	pairs     map[int]*pairState

	closed atomic.Bool
	wg     sync.WaitGroup
}

// New builds and starts a runtime.
func New(opts ...Option) (*Runtime, error) {
	o := defaultOptions()
	for _, f := range opts {
		f(&o)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	rt := &Runtime{
		opts:  o,
		start: time.Now(),
		pairs: make(map[int]*pairState),
		pool:  buffer.NewEmptyPool(o.buffer, o.minQuota),
		planner: &core.Planner{
			Track:             track.New(simtime.Duration(o.slotSize), 0),
			B0:                o.buffer,
			MaxLatency:        simtime.Duration(o.maxLatency),
			Headroom:          o.headroom,
			OmegaMicro:        o.omegaMicro,
			PerItemMicro:      o.perItemMicro,
			OverheadMicro:     o.overheadMicro,
			DisableLatching:   o.disableLatching,
			DisableResizing:   o.disableResizing,
			DisablePrediction: o.disablePrediction,
			// Shared ω multiplier: pair-specific planner copies (per-pair
			// MaxLatency) inherit the handle, so the power-cap controller
			// throttles every pair with one Set.
			Scale: &core.OmegaScale{},
		},
	}
	if o.histograms || o.timelineCap > 0 {
		rt.obs = newObsState(o, rt.start)
	}
	for i := 0; i < o.managers; i++ {
		rt.managers = append(rt.managers, newManager(rt, i))
	}
	if o.consolidate != nil {
		pc, err := newPlacementController(rt, *o.consolidate)
		if err != nil {
			return nil, err
		}
		rt.placer = pc
	}
	if o.powercap != nil {
		rt.capper = newPowerCapController(rt, *o.powercap)
	}
	for _, m := range rt.managers {
		m := m
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			m.loop()
		}()
	}
	if rt.placer != nil {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.placer.loop()
		}()
	}
	if rt.capper != nil {
		rt.wg.Add(1)
		go func() {
			defer rt.wg.Done()
			rt.capper.loop()
		}()
	}
	return rt, nil
}

// now returns the runtime's virtual timestamp (nanoseconds since New).
func (rt *Runtime) now() simtime.Time {
	return simtime.Time(time.Since(rt.start))
}

// wallAt converts a virtual timestamp back to wall-clock time.
func (rt *Runtime) wallAt(t simtime.Time) time.Time {
	return rt.start.Add(time.Duration(t))
}

// Stats returns a snapshot of the runtime counters.
func (rt *Runtime) Stats() Stats { return rt.stats.snapshot() }

// PairSnapshot is one open pair's identity and counters as captured by
// Runtime.PairSnapshots.
type PairSnapshot struct {
	// ID is the pair's runtime-assigned id (Pair.ID).
	ID int
	// Len is the number of items buffered at snapshot time.
	Len int
	// Quota is the pair's current elastic buffer capacity.
	Quota int
	// Armed reports whether the pair holds (or is about to compute) a
	// slot reservation — the live analogue of "has a scheduled wakeup".
	Armed bool
	// Manager is the index of the core manager currently hosting the
	// pair (round-robin at creation; the placement controller may move
	// it, see WithConsolidation).
	Manager int
	// Quarantined reports an open circuit breaker (Put fails fast and
	// only half-open probes drain the pair; see Breaker).
	Quarantined bool
	// Degraded reports that the most recent handler invocation overran
	// its HandlerTimeout deadline; a clean invocation clears it.
	Degraded bool
	// Retained is the size of a failed batch held for redelivery.
	Retained int
	PairStats
}

// PairSnapshots captures every open pair's stats in one call, ordered
// by pair id. The per-pair counters sum to the matching Stats fields up
// to snapshot skew (pairs closed before the call no longer appear).
func (rt *Runtime) PairSnapshots() []PairSnapshot {
	rt.pairMu.Lock()
	states := make([]*pairState, 0, len(rt.pairs))
	for _, st := range rt.pairs {
		states = append(states, st)
	}
	rt.pairMu.Unlock()
	sort.Slice(states, func(i, j int) bool { return states[i].id < states[j].id })
	snaps := make([]PairSnapshot, len(states))
	for i, st := range states {
		snaps[i] = PairSnapshot{
			ID:          st.id,
			Len:         st.pending(),
			Quota:       st.quota(),
			Armed:       st.armed.Load(),
			Manager:     st.mgr.Load().id,
			Quarantined: st.quarantined.Load(),
			Degraded:    st.degraded.Load(),
			Retained:    int(st.retained.Load()),
			PairStats:   st.pairStats(),
		}
	}
	return snaps
}

// Close stops every core manager, draining all remaining buffered
// items through their handlers first. Close is idempotent and safe to
// race with concurrent Put: once every producer has returned, every
// accepted item has been drained or accounted as dropped
// (ItemsOut + ItemsDropped == ItemsIn; drops only happen when a
// handler fails during these final drains or exhausted redelivery).
func (rt *Runtime) Close() error {
	if rt.closed.Swap(true) {
		return nil
	}
	if rt.placer != nil {
		close(rt.placer.done)
	}
	if rt.capper != nil {
		close(rt.capper.done)
	}
	for _, m := range rt.managers {
		close(m.done)
	}
	rt.wg.Wait()
	// Producers that passed Put's closed check before the flag flipped
	// may have enqueued after their manager's final drain. Sweep every
	// still-open pair so no accepted item is stranded; Put's own
	// post-push closed re-check catches enqueues that land after this
	// sweep (see Pair.Put).
	rt.pairMu.Lock()
	states := make([]*pairState, 0, len(rt.pairs))
	for _, st := range rt.pairs {
		states = append(states, st)
	}
	rt.pairMu.Unlock()
	for _, st := range states {
		st.countFinal(rt, st.drainFault(true))
	}
	if rt.obs != nil && rt.obs.clock != nil {
		rt.obs.clock.Stop()
	}
	return nil
}

// requestQuota serializes pool negotiation across manager goroutines.
func (rt *Runtime) requestQuota(id, want int) int {
	rt.poolMu.Lock()
	defer rt.poolMu.Unlock()
	return rt.pool.Request(id, want)
}

// addPair registers a pair with the pool, returning its id.
func (rt *Runtime) addPair() (int, error) {
	if rt.closed.Load() {
		return 0, ErrClosed
	}
	rt.pairMu.Lock()
	defer rt.pairMu.Unlock()
	if rt.openPairs >= rt.opts.maxPairs {
		return 0, ErrTooManyPairs
	}
	id := rt.nextPair
	rt.nextPair++
	rt.openPairs++
	rt.poolMu.Lock()
	err := rt.pool.Add(id)
	rt.poolMu.Unlock()
	if err != nil {
		return 0, err
	}
	return id, nil
}

// trackPair records a pair's manager-side state for PairSnapshots and
// Close's final sweep.
func (rt *Runtime) trackPair(st *pairState) {
	rt.pairMu.Lock()
	rt.pairs[st.id] = st
	rt.pairMu.Unlock()
}

// removePair releases a pair's pool membership. A closing pair's
// histograms fold into the runtime's retired accumulators so
// LatencyTotals keeps covering it.
func (rt *Runtime) removePair(id int) {
	rt.pairMu.Lock()
	rt.openPairs--
	st := rt.pairs[id]
	delete(rt.pairs, id)
	rt.pairMu.Unlock()
	if st != nil && st.obs != nil && rt.obs != nil && rt.obs.hist {
		rt.obs.retiredWait.Merge(st.obs.wait)
		rt.obs.retiredDone.Merge(st.obs.done)
	}
	rt.poolMu.Lock()
	_ = rt.pool.Remove(id)
	rt.poolMu.Unlock()
}

// managerFor assigns pairs to managers round-robin by id.
func (rt *Runtime) managerFor(id int) *manager {
	return rt.managers[id%len(rt.managers)]
}
